"""CLI for the tuning gym: ``python -m repro.gym``.

Examples::

    python -m repro.gym --knobs                  # registry table
    python -m repro.gym --workload op:hmult --searcher random --steps 8
    python -m repro.gym --workload boot --searcher hill --steps 12 \\
        --out traj.json --plot fitness.svg
"""

from __future__ import annotations

import argparse
import json
import sys

from ..tuning.knobs import render_registry
from .env import DEFAULT_SEARCH_KNOBS, TuningEnv
from .plot import write_fitness_svg
from .search import SEARCHERS, run_searcher


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.gym",
        description="Design-space exploration over the declared "
                    "tuning knobs.",
    )
    ap.add_argument("--knobs", action="store_true",
                    help="print the declared knob registry and exit")
    ap.add_argument("--workload", default="boot",
                    help="boot | helr | resnet | op:<name> "
                         "(default: boot)")
    ap.add_argument("--objective", default="latency",
                    choices=("latency", "throughput_per_gb"))
    ap.add_argument("--searcher", default="hill",
                    choices=sorted(SEARCHERS))
    ap.add_argument("--steps", type=int, default=12,
                    help="evaluation budget (mapped to generations x "
                         "population for the evolutionary searcher)")
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--search-knobs", default=None,
                    help="comma-separated knob names "
                         f"(default: {','.join(DEFAULT_SEARCH_KNOBS)})")
    ap.add_argument("--out", default=None,
                    help="write the trajectory JSON here")
    ap.add_argument("--plot", default=None,
                    help="write a best-so-far fitness SVG here")
    args = ap.parse_args(argv)

    if args.knobs:
        print(render_registry())
        return 0

    knobs = (tuple(k.strip() for k in args.search_knobs.split(","))
             if args.search_knobs else None)
    env = TuningEnv(args.workload, objective=args.objective, knobs=knobs)
    kwargs = {}
    if args.searcher == "evolutionary":
        kwargs = {"generations": max(2, args.steps // 6), "population": 6}
    else:
        kwargs = {"steps": args.steps}
    result = run_searcher(args.searcher, env, seed=args.seed, **kwargs)

    print(f"workload={args.workload} objective={args.objective} "
          f"searcher={args.searcher} seed={args.seed}")
    print(f"baseline: reward={result.baseline_reward:.4g} "
          f"latency={result.baseline_latency_us:.1f}us")
    print(f"best:     reward={result.best_reward:.4g} "
          f"latency={result.best_latency_us:.1f}us "
          f"({result.evaluations} evaluations)")
    print(f"best assignment: {result.best_assignment}")

    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
        print(f"trajectory -> {args.out}")
    if args.plot:
        write_fitness_svg([result], args.plot,
                          title=f"{args.workload} / {args.objective}")
        print(f"plot -> {args.plot}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
