"""Searchers over a :class:`~repro.gym.env.TuningEnv` action space.

Three classic ArchGym-style strategies — random, first-improvement hill
climbing, and a (mu + lambda) evolutionary loop — all with the same
contract:

* **seeded determinism** — every stochastic choice flows through one
  ``numpy.random.default_rng(seed)``; the same ``(env, seed, budget)``
  reproduces the identical trajectory point for point;
* **baseline first** — evaluation 0 is always the environment's default
  assignment, so the returned best can never be worse than the
  hand-picked configuration it challenges (the ``BENCH_gym.json``
  beat-or-match guarantee is structural, not lucky);
* **budget = priced evaluations** — cache hits inside the env are free,
  so revisiting points never burns budget twice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .env import Trajectory, TuningEnv

__all__ = ["SearchResult", "random_search", "hill_climb",
           "evolutionary_search", "SEARCHERS", "run_searcher"]


@dataclass
class SearchResult:
    """Outcome of one search episode."""

    searcher: str
    seed: int
    best_assignment: Dict[str, Any]
    best_reward: float
    best_latency_us: float
    baseline_reward: float
    baseline_latency_us: float
    evaluations: int
    trajectory: Trajectory

    def to_dict(self) -> Dict[str, Any]:
        return {
            "searcher": self.searcher, "seed": self.seed,
            "best_assignment": dict(self.best_assignment),
            "best_reward": self.best_reward,
            "best_latency_us": self.best_latency_us,
            "baseline_reward": self.baseline_reward,
            "baseline_latency_us": self.baseline_latency_us,
            "evaluations": self.evaluations,
            "trajectory": self.trajectory.to_dict(),
        }


def _finish(name: str, env: TuningEnv, seed: int,
            baseline: Tuple[Dict[str, Any], float, float]) -> SearchResult:
    best = env.trajectory.best
    base_assignment, base_reward, base_latency = baseline
    return SearchResult(
        searcher=name, seed=seed,
        best_assignment=best.assignment, best_reward=best.reward,
        best_latency_us=best.latency_us,
        baseline_reward=base_reward, baseline_latency_us=base_latency,
        evaluations=len(env.trajectory.points),
        trajectory=env.trajectory,
    )


def _eval_baseline(env: TuningEnv, seed: int
                   ) -> Tuple[Dict[str, Any], float, float]:
    start = env.reset(seed=seed)
    _, reward, info = env.step(start)
    return start, reward, info["latency_us"]


def _sample(space: Dict[str, Tuple[Any, ...]],
            rng: np.random.Generator) -> Dict[str, Any]:
    return {name: pts[int(rng.integers(len(pts)))]
            for name, pts in space.items()}


def _mutate(assignment: Dict[str, Any],
            space: Dict[str, Tuple[Any, ...]],
            rng: np.random.Generator) -> Dict[str, Any]:
    """Flip one knob to a different grid point (uniform over both)."""
    child = dict(assignment)
    name = list(space)[int(rng.integers(len(space)))]
    pts = [p for p in space[name] if p != assignment.get(name)]
    if pts:
        child[name] = pts[int(rng.integers(len(pts)))]
    return child


def random_search(env: TuningEnv, *, steps: int = 16,
                  seed: int = 0) -> SearchResult:
    """Baseline point plus ``steps`` uniform samples of the grid."""
    rng = np.random.default_rng(seed)
    baseline = _eval_baseline(env, seed)
    space = env.space()
    for _ in range(steps):
        env.step(_sample(space, rng))
    return _finish("random", env, seed, baseline)


def hill_climb(env: TuningEnv, *, steps: int = 16,
               seed: int = 0) -> SearchResult:
    """First-improvement hill climbing from the baseline assignment.

    Each step mutates one knob of the incumbent; the mutant replaces it
    only on strict reward improvement.  Monotone by construction.
    """
    rng = np.random.default_rng(seed)
    baseline = _eval_baseline(env, seed)
    space = env.space()
    incumbent, incumbent_reward = baseline[0], baseline[1]
    for _ in range(steps):
        candidate = _mutate(incumbent, space, rng)
        _, reward, _ = env.step(candidate)
        if reward > incumbent_reward:
            incumbent, incumbent_reward = candidate, reward
    return _finish("hill", env, seed, baseline)


def evolutionary_search(env: TuningEnv, *, generations: int = 4,
                        population: int = 6, elite: int = 2,
                        seed: int = 0) -> SearchResult:
    """(mu + lambda) evolution: elites survive, children are mutated
    elites, the rest immigrate randomly.  Generation 0 contains the
    baseline, so the final best dominates it."""
    rng = np.random.default_rng(seed)
    baseline = _eval_baseline(env, seed)
    space = env.space()
    pool: List[Tuple[float, Dict[str, Any]]] = [
        (baseline[1], baseline[0])
    ]
    for _ in range(population - 1):
        candidate = _sample(space, rng)
        _, reward, _ = env.step(candidate)
        pool.append((reward, candidate))
    for _ in range(generations - 1):
        pool.sort(key=lambda item: item[0], reverse=True)
        elites = pool[:elite]
        nxt = list(elites)
        while len(nxt) < population:
            if rng.random() < 0.75:
                parent = elites[int(rng.integers(len(elites)))][1]
                candidate = _mutate(parent, space, rng)
            else:
                candidate = _sample(space, rng)
            _, reward, _ = env.step(candidate)
            nxt.append((reward, candidate))
        pool = nxt
    return _finish("evolutionary", env, seed, baseline)


SEARCHERS = {
    "random": random_search,
    "hill": hill_climb,
    "evolutionary": evolutionary_search,
}


def run_searcher(name: str, env: TuningEnv, *, seed: int = 0,
                 **kwargs: Any) -> SearchResult:
    try:
        fn = SEARCHERS[name]
    except KeyError:
        raise ValueError(
            f"unknown searcher {name!r}; one of {sorted(SEARCHERS)}"
        ) from None
    return fn(env, seed=seed, **kwargs)
