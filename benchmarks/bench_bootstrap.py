"""Benchmark: dense per-diagonal bootstrap vs the batched factored pipeline.

The slim bootstrap spends most of its time in the SlotToCoeff /
CoeffToSlot linear transforms. This bench measures the two optimizations
of the batched slot pipeline:

* **batched linear transforms** — ``LinearTransform.apply`` (cached
  eval-form diagonal stacks + one wide-accumulator pass per giant group)
  against the per-diagonal ``apply_looped`` reference, asserted
  bit-identical before timing;
* **FFT-factored bootstrapping** — the full slim bootstrap with
  SlotToCoeff/CoeffToSlot as O(log s) sparse radix stages
  (``BootstrapConfig(fft_factored=True)``) against the dense
  per-diagonal path, asserted to land inside the dense path's precision
  envelope before timing.  The dense baseline runs ``apply_looped``
  transforms — the pre-batching pipeline (with its plaintexts already
  memoized, so the baseline is conservative).

Run::

    PYTHONPATH=src python benchmarks/bench_bootstrap.py            # full run
    PYTHONPATH=src python benchmarks/bench_bootstrap.py --reps 1   # CI smoke

Results land in ``BENCH_bootstrap.json`` (see ``--out``); the committed
headline is the dense-vs-factored full-bootstrap speedup at the
``boot-mid`` set (``n=2^9, s=2^8, fuse=2``).
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from repro.ckks import CkksContext, CkksParams
from repro.ckks.bootstrap import BootstrapConfig, Bootstrapper
from repro.ckks.linear_transform import LinearTransform

#: Functional mid-size bootstrap set: big enough that the dense
#: transforms dominate, small enough for CI.
BOOT_PARAMS = dict(n=512, max_level=16, num_special=2, dnum=17,
                   scale_bits=26, secret_hamming_weight=8, name="boot-mid")
SINE_DEGREE = 63
EVAL_RANGE = 4.5
FUSE = 2
#: Absolute slot-error budget of the toy-scale slim bootstrap (see
#: tests/ckks/test_bootstrap.py); the factored path must stay inside
#: max(3x the dense error, this).
PRECISION_ENVELOPE = 5e-2


def best_of(fn, reps):
    """Best-of-``reps`` wall time in seconds (one untimed warmup)."""
    fn()
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _bootstrap_dense_looped(boot, ct, keys):
    """The dense bootstrap with per-diagonal transform applies — the
    pre-batching pipeline, stage for stage like ``Bootstrapper.bootstrap``."""
    ev = boot.ctx.evaluator
    ct = boot._stc.apply_looped(ct, keys)
    ct = ev.level_down(ct, 0)
    raised_scale = ct.scale
    ct = boot.mod_raise(ct)
    conj = ev.conjugate(ct, keys)
    ct = ev.hadd_matched(
        boot._cts1.apply_looped(ct, keys),
        boot._cts2.apply_looped(conj, keys),
    )
    return boot.eval_mod(ct, keys, raised_scale=raised_scale)


def _assert_bit_equal(a, b, what):
    if not (np.array_equal(a.c0.data, b.c0.data)
            and np.array_equal(a.c1.data, b.c1.data)
            and a.scale == b.scale and a.level == b.level):
        raise AssertionError(
            f"batched {what} disagrees with the looped reference"
        )


def bench_linear_transform(ctx, keys, reps, rng):
    """Batched vs per-diagonal apply on one dense BSGS transform."""
    s = ctx.slots
    mat = rng.normal(size=(s, s)) + 1j * rng.normal(size=(s, s))
    lt = LinearTransform(ctx, mat, bsgs=True)
    missing = [r for r in lt.required_rotations() if r not in keys.rotation]
    if missing:
        raise AssertionError(f"benchmark keys missing rotations {missing}")
    ct = ctx.encrypt(rng.normal(size=s) * 0.3, keys)

    looped = lambda: lt.apply_looped(ct, keys)
    batched = lambda: lt.apply(ct, keys)
    _assert_bit_equal(looped(), batched(), "linear transform")

    t_looped = best_of(looped, reps)
    t_batched = best_of(batched, reps)
    return {
        "op": "linear_transform",
        "set": ctx.params.name,
        "n": ctx.params.n,
        "slots": s,
        "bit_exact": True,
        "looped_ms": t_looped * 1e3,
        "batched_ms": t_batched * 1e3,
        "speedup": t_looped / t_batched,
    }


def bench_bootstrap(ctx, keys, reps, rng):
    """Dense per-diagonal bootstrap vs the FFT-factored batched one."""
    dense = Bootstrapper(ctx, BootstrapConfig(
        sine_degree=SINE_DEGREE, eval_range=EVAL_RANGE
    ))
    factored = Bootstrapper(ctx, BootstrapConfig(
        sine_degree=SINE_DEGREE, eval_range=EVAL_RANGE,
        fft_factored=True, fuse=FUSE,
    ))
    vals = np.zeros(ctx.slots)
    vals[:8] = rng.uniform(-0.75, 0.75, 8)
    ct_dense = ctx.encrypt(vals, keys, level=1)
    ct_fact = ctx.encrypt(vals, keys, level=factored.stc_levels)

    run_dense = lambda: _bootstrap_dense_looped(dense, ct_dense, keys)
    run_fact = lambda: factored.bootstrap(ct_fact, keys)

    err_dense = float(np.max(np.abs(
        ctx.decrypt_decode_real(run_dense(), keys) - vals
    )))
    err_fact = float(np.max(np.abs(
        ctx.decrypt_decode_real(run_fact(), keys) - vals
    )))
    budget = max(3 * err_dense, PRECISION_ENVELOPE)
    if err_fact > budget:
        raise AssertionError(
            f"factored bootstrap error {err_fact:.2e} outside the dense "
            f"precision envelope (dense {err_dense:.2e}, budget "
            f"{budget:.2e})"
        )

    t_dense = best_of(run_dense, reps)
    t_fact = best_of(run_fact, reps)
    return {
        "op": "bootstrap",
        "set": ctx.params.name,
        "n": ctx.params.n,
        "slots": ctx.slots,
        "fuse": FUSE,
        "stc_stages": factored.stc_levels,
        "dense_error": err_dense,
        "factored_error": err_fact,
        "dense_ms": t_dense * 1e3,
        "factored_ms": t_fact * 1e3,
        "speedup": t_dense / t_fact,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=3,
                        help="timed repetitions per config (best-of)")
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(__file__), os.pardir,
                             "BENCH_bootstrap.json"),
        help="output JSON path",
    )
    args = parser.parse_args(argv)
    if args.reps < 1:
        parser.error(f"--reps must be >= 1, got {args.reps}")

    rng = np.random.default_rng(0)
    params = CkksParams(**BOOT_PARAMS)
    ctx = CkksContext.create(params, seed=7)
    steps = set(Bootstrapper.required_rotations_for(params))
    steps.update(Bootstrapper.required_rotations_for(
        params, fft_factored=True, fuse=FUSE
    ))
    # The random-matrix transform benchmark uses dense BSGS steps too.
    keys = ctx.keygen(rotations=sorted(steps), conjugation=True)

    report = {
        "bench": "bench_bootstrap",
        "description": (
            "per-diagonal dense bootstrap vs cached-stack batched "
            "transforms and FFT-factored StC/CtS"
        ),
        "reps": args.reps,
        "configs": [],
    }

    cfg = bench_linear_transform(ctx, keys, args.reps, rng)
    report["configs"].append(cfg)
    print(f"linear-transform {cfg['set']:8s} s={cfg['slots']}:  "
          f"looped {cfg['looped_ms']:8.1f} ms  "
          f"batched {cfg['batched_ms']:8.1f} ms  "
          f"speedup {cfg['speedup']:.2f}x  (bit-exact)")

    cfg = bench_bootstrap(ctx, keys, args.reps, rng)
    report["configs"].append(cfg)
    print(f"bootstrap        {cfg['set']:8s} s={cfg['slots']} "
          f"fuse={cfg['fuse']}:  "
          f"dense {cfg['dense_ms']:8.1f} ms  "
          f"factored {cfg['factored_ms']:8.1f} ms  "
          f"speedup {cfg['speedup']:.2f}x  "
          f"(err {cfg['dense_error']:.1e} -> {cfg['factored_error']:.1e})")

    report["headline_speedup"] = cfg["speedup"]
    print(f"\nheadline (full bootstrap, {cfg['set']}): "
          f"{cfg['speedup']:.2f}x")

    out = os.path.abspath(args.out)
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}")
    return report


if __name__ == "__main__":
    main()
