"""Table XV: AES-CTR-128 transciphering of 512 KB over CKKS.

Prices the homomorphic AES evaluation schedule at the AES parameter set
(N=2^16, L=46) and compares with the paper's GPU and 48-core CPU numbers.
The client-side AES itself runs for real (validated against FIPS-197 in
the test suite).
"""

from repro.analysis import format_table
from repro.workloads import (
    cpu_transcipher_minutes,
    ctr_encrypt,
    simulate_transcipher,
)
from repro.workloads.aes_transcipher import BLOCKS, DATA_BYTES


def measure():
    result = simulate_transcipher()
    # Real client-side AES on a sample, to keep the data path honest.
    key = list(range(16))
    nonce = list(range(12))
    sample = bytes(range(256))
    roundtrip = ctr_encrypt(
        ctr_encrypt(sample, key, nonce), key, nonce
    ) == sample
    return result, roundtrip


def build_table(result):
    cpu_min = cpu_transcipher_minutes()
    rows = [
        ["CPU 48-core (paper)", f"{cpu_min:.1f}", 128, BLOCKS,
         DATA_BYTES // 1024],
        ["WarpDrive GPU (paper)", "3.5", 128, BLOCKS, DATA_BYTES // 1024],
        ["This repro (sim)", f"{result.latency_min:.2f}", 128, BLOCKS,
         DATA_BYTES // 1024],
        ["Speedup vs CPU (sim)",
         f"{cpu_min / result.latency_min:.1f}x", "-", "-", "-"],
        ["  paper", "31.6x", "-", "-", "-"],
    ]
    return format_table(
        ["scheme", "latency (min)", "block bits", "blocks", "KB"],
        rows,
        title="Table XV — AES-CTR-128 transciphering over CKKS",
    )


def test_table15_transcipher(benchmark, record_table):
    result, roundtrip = benchmark(measure)
    record_table("table15_transcipher", build_table(result))

    assert roundtrip, "client-side AES-CTR must round-trip"
    cpu_min = cpu_transcipher_minutes()
    # Order-of-magnitude GPU advantage (paper: 31.6x).
    assert cpu_min / result.latency_min > 10
    # Simulated latency within ~5x of the paper's 3.5 minutes.
    assert 0.5 < result.latency_min < 10
