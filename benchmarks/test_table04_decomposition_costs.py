"""Table IV: operation counts per decomposition level (exact analytics).

This table is closed-form, so the reproduction is exact: matrix sizes,
element-wise multiplications, modular reductions/multiplications and
bit-decompose/merge counts per level at N=65536, plus the design rule it
justifies (stop at two levels).
"""

import math

from repro.analysis import format_table
from repro.ntt import build_plan, table_iv_rows

N = 65536


def build_table():
    rows_data = table_iv_rows(N)

    def pow2(v):
        exp = math.log2(v)
        if exp == int(exp):
            return f"2^{int(exp)}"
        mant = v / (2 ** int(exp))
        return f"{mant:.1f}*2^{int(exp)}"

    rows = []
    for cost in rows_data:
        rows.append([
            f"{cost.level}-level",
            pow2(cost.matrix_size),
            pow2(cost.ew_mul),
            pow2(cost.mod_red),
            pow2(cost.mod_mul),
            pow2(cost.bit_dec_mer),
        ])
    table = format_table(
        ["decomp", "MatrixSize", "EW-Mul", "ModRed", "ModMul",
         "Bit-Dec&Mer"],
        rows,
        title=f"Table IV — operation counts per decomposition level "
              f"(N={N})",
    )
    return table, rows_data


def test_table04_decomposition_costs(benchmark, record_table):
    table, rows_data = benchmark(build_table)
    record_table("table04_decomposition_costs", table)

    by_level = {r.level: r for r in rows_data}
    # Exact Table IV values.
    assert by_level[0].matrix_size == 2**32
    assert by_level[1].matrix_size == 2**16
    assert by_level[2].matrix_size == 2**8
    assert by_level[3].matrix_size == 2**4
    assert by_level[1].ew_mul == 2**25
    assert by_level[2].ew_mul == 2**22
    assert by_level[3].ew_mul == 2**21
    assert by_level[2].mod_mul == 3 * 2**16
    assert by_level[3].bit_dec_mer == 7 * 2**17

    # §IV-A-2: 2 levels cut the GEMM load to 1/8 of 1 level...
    assert by_level[1].ew_mul // by_level[2].ew_mul == 8
    # ...and the planner indeed stops at depth 2 with 16-point leaves.
    plan = build_plan(N)
    assert plan.depth == 2
    assert plan.describe() == "(16x16)x(16x16)"
    assert plan.num_steps() == 7  # the Fig. 2 schedule


def test_fig02_decomposition_structure(benchmark, record_table):
    """Fig. 2: the 7-step schedule of the 2-level decomposition."""
    plan = benchmark(build_plan, N)
    lines = [
        "Fig. 2 — WarpDrive NTT decomposition structure",
        f"plan        : {plan.describe()}",
        f"depth       : {plan.depth} levels",
        f"steps       : {plan.num_steps()} "
        "(4 grouped inner-NTT steps + 3 twiddle/transpose steps)",
        f"inner sizes : {plan.leaf_sizes()}",
    ]
    for n, expected in ((4096, "(16x16)x16"), (65536, "(16x16)x(16x16)")):
        assert build_plan(n).describe() == expected
    record_table("fig02_decomposition_structure", "\n".join(lines))
