"""Table XI: comparison against Cheddar (N=2^16, alpha=7).

Cheddar is closed-source; its latencies are the published values. We
simulate WarpDrive at the same configuration (L=27 full / L=13 half,
dnum=4 so each key-switching digit spans alpha=7 primes) and check the
paper's shape: WarpDrive wins HADD (~1.2-1.5x) and PMULT (~1.3-1.4x)
while HMULT lands within a few percent either way.
"""

from repro.analysis import format_table
from repro.baselines.published import TABLE_XI_CHEDDAR_US
from repro.ckks import CkksParams
from repro.core import OperationScheduler

#: alpha = ceil((L+1)/dnum) = 7 for L=27, dnum=4 (the paper's setup).
PARAMS = CkksParams(n=2**16, max_level=27, num_special=7, dnum=4,
                    name="cheddar-cmp")
LEVELS = {"full": 27, "half": 13}
OPS = [("HADD", "hadd"), ("PMULT", "pmult"), ("HMULT", "hmult")]


def measure():
    sched = OperationScheduler(PARAMS)
    return {
        table_op: {
            label: sched.latency_us(op, level=lvl)
            for label, lvl in LEVELS.items()
        }
        for table_op, op in OPS
    }


def build_table(data):
    rows = []
    for table_op, _ in OPS:
        pub = TABLE_XI_CHEDDAR_US[table_op]
        rows.append(
            [f"{table_op}: Cheddar (paper)"]
            + [pub["Cheddar"][label] for label in LEVELS]
        )
        rows.append(
            ["  WarpDrive (sim)"]
            + [round(data[table_op][label], 1) for label in LEVELS]
        )
        rows.append(
            ["  WarpDrive (paper)"]
            + [pub["WarpDrive"][label] for label in LEVELS]
        )
        rows.append(
            ["  speedup sim (paper)"]
            + [
                f"{pub['Cheddar'][label] / data[table_op][label]:.2f}x "
                f"({pub['Cheddar'][label] / pub['WarpDrive'][label]:.2f}x)"
                for label in LEVELS
            ]
        )
    return format_table(
        ["operation / scheme", "Full (l=27)", "Half (l=13)"], rows,
        title="Table XI — Cheddar comparison (N=2^16, alpha=7, us)",
        col_width=16,
    )


def test_table11_cheddar(benchmark, record_table):
    data = benchmark(measure)
    record_table("table11_cheddar", build_table(data))

    pub = TABLE_XI_CHEDDAR_US
    for label in LEVELS:
        # WarpDrive wins the element-wise ops against Cheddar.
        assert data["HADD"][label] < pub["HADD"]["Cheddar"][label]
        assert data["PMULT"][label] < pub["PMULT"]["Cheddar"][label]
        # HMULT is comparable: within 2.5x of Cheddar's number (the paper
        # reports 0.97-1.02x; our simulator is documented ~2x optimistic).
        ratio = data["HMULT"][label] / pub["HMULT"]["Cheddar"][label]
        assert 0.25 < ratio < 1.5, f"HMULT/{label}: ratio {ratio:.2f}"
    # Half level is faster than full level for every op.
    for table_op, _ in OPS:
        assert data[table_op]["half"] < data[table_op]["full"]
