"""Microbenchmark: per-digit key-switch loop vs the digit-batched pipeline.

Key-switching is the paper's costliest primitive (Tables III/IX). PR 1
vectorized each stage across the prime dimension; this bench measures the
next axis of parallelism — the decomposition digits of ``keyswitch()``
and the rotation steps of ``hoisted_rotations()`` — comparing the
preserved per-digit/per-step reference implementations against the fused
stacked pipelines (lazy-ModUp + Shoup-kernel stacked NTT + wide-MAC
inner product + batched ModDown).

Both paths are asserted bit-identical before any timing.

Run::

    PYTHONPATH=src python benchmarks/bench_keyswitch.py            # full run
    PYTHONPATH=src python benchmarks/bench_keyswitch.py --reps 1   # CI smoke

Results land in ``BENCH_keyswitch.json`` (see ``--out``); the committed
headline is the batched-vs-looped keyswitch speedup at SET-C
(``n=2**14, dnum=15``).
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from repro.ckks import CkksContext, ParameterSets
from repro.ckks.hoisting import hoisted_rotations, hoisted_rotations_looped
from repro.ckks.keyswitch import keyswitch, keyswitch_looped
from repro.ckks.poly import EVAL, RnsPoly
from repro.numtheory.rns import RNSBasis

#: Key-switch configs: the paper's SET-B and SET-C (Table VI).
KS_SETS = ["set_b", "set_c"]
HEADLINE_SET = "SET-C"
#: Hoisted-rotation config: SET-B, batching across 8 rotation steps.
HOIST_SET = "set_b"
HOIST_STEPS = list(range(1, 9))


def best_of(fn, reps):
    """Best-of-``reps`` wall time in seconds (one untimed warmup)."""
    fn()
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _assert_pair_equal(ref, got, what):
    for r, g, part in zip(ref, got, ("ks0", "ks1")):
        if r != g:
            raise AssertionError(
                f"batched {what} disagrees with the looped reference "
                f"({part})"
            )


def bench_keyswitch_config(set_name, reps, rng):
    params = getattr(ParameterSets, set_name)()
    ctx = CkksContext.create(params, seed=0)
    keys = ctx.keygen()
    ev = ctx.evaluator
    d = RnsPoly(
        RNSBasis(ev.q_moduli).random(params.n, rng), ev.q_moduli, EVAL
    )

    looped = lambda: keyswitch_looped(d, keys.relin, ev.p_moduli)
    batched = lambda: keyswitch(d, keys.relin, ev.p_moduli)
    _assert_pair_equal(looped(), batched(), f"keyswitch at {params.name}")

    t_looped = best_of(looped, reps)
    t_batched = best_of(batched, reps)
    return {
        "op": "keyswitch",
        "set": params.name,
        "n": params.n,
        "dnum": params.dnum,
        "num_primes": params.num_primes,
        "looped_ms": t_looped * 1e3,
        "batched_ms": t_batched * 1e3,
        "speedup": t_looped / t_batched,
    }


def bench_hoisting_config(set_name, steps, reps, rng):
    params = getattr(ParameterSets, set_name)()
    ctx = CkksContext.create(params, seed=0)
    keys = ctx.keygen(rotations=steps)
    ev = ctx.evaluator
    ct = ctx.encrypt(
        list(rng.standard_normal(params.slots)), keys
    )

    looped = lambda: hoisted_rotations_looped(ev, ct, steps, keys)
    batched = lambda: hoisted_rotations(ev, ct, steps, keys)
    ref, got = looped(), batched()
    for s in steps:
        if ref[s].c0 != got[s].c0 or ref[s].c1 != got[s].c1:
            raise AssertionError(
                f"batched hoisted rotation disagrees at step {s}"
            )

    t_looped = best_of(looped, reps)
    t_batched = best_of(batched, reps)
    return {
        "op": "hoisted_rotations",
        "set": params.name,
        "n": params.n,
        "dnum": params.dnum,
        "num_steps": len(steps),
        "looped_ms": t_looped * 1e3,
        "batched_ms": t_batched * 1e3,
        "speedup": t_looped / t_batched,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=5,
                        help="timed repetitions per config (best-of)")
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(__file__), os.pardir,
                             "BENCH_keyswitch.json"),
        help="output JSON path",
    )
    args = parser.parse_args(argv)
    if args.reps < 1:
        parser.error(f"--reps must be >= 1, got {args.reps}")

    rng = np.random.default_rng(0)
    report = {
        "bench": "bench_keyswitch",
        "description": (
            "per-digit/per-step key-switch loop vs digit- and "
            "step-batched pipeline"
        ),
        "reps": args.reps,
        "configs": [],
    }
    for set_name in KS_SETS:
        cfg = bench_keyswitch_config(set_name, args.reps, rng)
        report["configs"].append(cfg)
        print(f"keyswitch  {cfg['set']:6s} N=2^{cfg['n'].bit_length() - 1} "
              f"dnum={cfg['dnum']:2d}:  "
              f"looped {cfg['looped_ms']:8.1f} ms  "
              f"batched {cfg['batched_ms']:8.1f} ms  "
              f"speedup {cfg['speedup']:.2f}x")

    cfg = bench_hoisting_config(HOIST_SET, HOIST_STEPS, args.reps, rng)
    report["configs"].append(cfg)
    print(f"hoisting   {cfg['set']:6s} N=2^{cfg['n'].bit_length() - 1} "
          f"steps={cfg['num_steps']}:  "
          f"looped {cfg['looped_ms']:8.1f} ms  "
          f"batched {cfg['batched_ms']:8.1f} ms  "
          f"speedup {cfg['speedup']:.2f}x")

    headline = next(
        c for c in report["configs"]
        if c["op"] == "keyswitch" and c["set"] == HEADLINE_SET
    )
    report["headline_speedup"] = headline["speedup"]
    print(f"\nheadline (keyswitch, {HEADLINE_SET}): "
          f"{headline['speedup']:.2f}x")

    out = os.path.abspath(args.out)
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}")
    return report


if __name__ == "__main__":
    main()
