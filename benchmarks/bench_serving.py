"""Benchmark: the multi-GPU FHE serving layer end to end.

Sweeps the discrete-event serving simulation (:mod:`repro.serving`)
across fleet sizes, arrival rates, placement policies and dagopt
pre-compilation, and writes one ``BENCH_serving.json``.  Every latency
percentile is computed from per-job completion times on the simulated
fleet clock; every run is seeded, so reruns reproduce the file bit for
bit.

Hard assertions (the serving perf contract):

* **scaling** — at saturating load, served throughput scales at least
  ``SCALE_2X_TARGET`` (1.7x) from 1 to 2 GPUs and ``SCALE_4X_TARGET``
  (3.0x) from 1 to 4 GPUs, for at least two distinct workload mixes;
* **placement** — at high load under HBM pressure, the memory-aware
  policy's mean p99 beats round-robin's (head-of-line blocking is the
  naive baseline's failure mode);
* **dagopt** — jobs pre-compiled with the :mod:`repro.trace.opt`
  pipeline serve strictly more throughput than unoptimized jobs on the
  same traffic.

Run::

    PYTHONPATH=src python benchmarks/bench_serving.py            # full
    PYTHONPATH=src python benchmarks/bench_serving.py --quick    # CI
    PYTHONPATH=src python benchmarks/bench_serving.py \
        --trace-dir traces/                      # + fleet timeline

``--trace-dir`` writes ``serving-fleet.trace.json``, a per-device
Perfetto timeline (one process per GPU, batch slices, HBM and
queue-depth counter tracks) of the 4-GPU showcase run.
"""

from __future__ import annotations

import argparse
import json
import os

from repro.gpusim.multi import save_fleet_trace
from repro.serving import ServingConfig, ServingSimulator, default_catalog

SCALE_2X_TARGET = 1.7
SCALE_4X_TARGET = 3.0

#: (name, kinds, saturating open-loop rate in jobs/s).
SCALING_WORKLOADS = (
    ("boot-only", ("boot",), 800.0),
    ("mixed", ("boot", "helr", "resnet", "aes"), 300.0),
)
FLEET_SIZES = (1, 2, 4, 8)

#: The HBM-pressure regime for the policy comparison: devices so small
#: that one helr/resnet x4 batch fills a device, so placement decides
#: whether work queues behind a full GPU or flows to one with room.
POLICY_KINDS = ("boot", "helr", "resnet")
POLICY_HBM_BYTES = 6 * 2**30
POLICY_RATE = 140.0
POLICY_MAX_BATCH = 4
POLICY_MAX_WAIT_US = 20_000.0

DAGOPT_RATE = 300.0

HORIZON_US = 500_000.0


def run_one(catalog, **kw):
    sim = ServingSimulator(ServingConfig(horizon_us=HORIZON_US, **kw),
                           catalog)
    return sim, sim.run()


def bench_scaling(catalog, seed):
    """Throughput vs fleet size at saturating load, per workload mix."""
    out = []
    for name, kinds, rate in SCALING_WORKLOADS:
        rows = []
        for gpus in FLEET_SIZES:
            _, rep = run_one(catalog, gpus=gpus, kinds=kinds,
                             rate_per_s=rate, seed=seed)
            rows.append({
                "gpus": gpus,
                "throughput_jobs_per_s": rep.throughput_jobs_per_s,
                "p50_us": rep.latency["p50_us"],
                "p99_us": rep.latency["p99_us"],
                "mean_batch": rep.batches["mean_size"],
                "utilization": [d["utilization"] for d in rep.devices],
            })
        base = rows[0]["throughput_jobs_per_s"]
        speedups = {
            r["gpus"]: r["throughput_jobs_per_s"] / base for r in rows
        }
        print(f"scaling [{name}] @ {rate:.0f}/s: " + "  ".join(
            f"{r['gpus']}gpu={r['throughput_jobs_per_s']:.0f}/s"
            f"(x{speedups[r['gpus']]:.2f})" for r in rows))
        if speedups[2] < SCALE_2X_TARGET:
            raise AssertionError(
                f"[{name}] 1->2 GPU throughput scaled x{speedups[2]:.2f} "
                f"< {SCALE_2X_TARGET}x at saturating load")
        if speedups[4] < SCALE_4X_TARGET:
            raise AssertionError(
                f"[{name}] 1->4 GPU throughput scaled x{speedups[4]:.2f} "
                f"< {SCALE_4X_TARGET}x at saturating load")
        out.append({
            "workload": name, "kinds": list(kinds), "rate_per_s": rate,
            "fleets": rows,
            "speedup_2gpu": round(speedups[2], 3),
            "speedup_4gpu": round(speedups[4], 3),
            "speedup_8gpu": round(speedups[8], 3),
        })
    return out


def bench_slo_curves(catalog, seed, rates):
    """SLO attainment and tail latency vs arrival rate per fleet size."""
    kinds = ("boot", "helr", "resnet", "aes")
    curves = []
    for gpus in FLEET_SIZES:
        points = []
        for rate in rates:
            _, rep = run_one(catalog, gpus=gpus, kinds=kinds,
                             rate_per_s=rate, seed=seed)
            points.append({
                "rate_per_s": rate,
                "throughput_jobs_per_s": rep.throughput_jobs_per_s,
                "p50_us": rep.latency["p50_us"],
                "p95_us": rep.latency["p95_us"],
                "p99_us": rep.latency["p99_us"],
                "slo_attainment": rep.slo_attainment,
                "queue_mean_depth": rep.queue["mean_depth"],
            })
        attain = ", ".join(
            f"{p['rate_per_s']:.0f}/s:{p['slo_attainment'] * 100:.0f}%"
            for p in points)
        print(f"slo [{gpus} gpu]: {attain}")
        curves.append({"gpus": gpus, "points": points})
    return curves


def bench_policies(catalog, seeds):
    """Mean tail latency per placement policy under HBM pressure."""
    results = {}
    for policy in ("round_robin", "least_loaded", "memory_aware"):
        p99s, thrs, rejs = [], [], []
        for seed in seeds:
            _, rep = run_one(
                catalog, gpus=2, kinds=POLICY_KINDS,
                rate_per_s=POLICY_RATE, policy=policy, seed=seed,
                hbm_bytes=POLICY_HBM_BYTES, max_batch=POLICY_MAX_BATCH,
                max_wait_us=POLICY_MAX_WAIT_US)
            p99s.append(rep.latency["p99_us"])
            thrs.append(rep.throughput_jobs_per_s)
            rejs.append(rep.rejections)
        results[policy] = {
            "mean_p99_us": round(sum(p99s) / len(p99s), 1),
            "p99_us_per_seed": [round(v, 1) for v in p99s],
            "mean_throughput_jobs_per_s": round(
                sum(thrs) / len(thrs), 2),
            "mean_rejections": round(sum(rejs) / len(rejs), 2),
        }
        print(f"policy [{policy:13s}] mean p99 "
              f"{results[policy]['mean_p99_us'] / 1e3:7.1f} ms  "
              f"thr {results[policy]['mean_throughput_jobs_per_s']:.1f}/s")
    rr = results["round_robin"]["mean_p99_us"]
    ma = results["memory_aware"]["mean_p99_us"]
    if ma >= rr:
        raise AssertionError(
            f"memory-aware mean p99 ({ma / 1e3:.1f} ms) did not beat "
            f"round-robin ({rr / 1e3:.1f} ms) under HBM pressure")
    results["memory_aware_vs_round_robin_p99"] = round(rr / ma, 3)
    return results


def bench_dagopt(catalog, seeds):
    """Served throughput with and without dagopt pre-compilation."""
    kinds = ("boot", "helr", "resnet", "aes")
    rows = {}
    for optimized in (False, True):
        thrs, p99s = [], []
        for seed in seeds:
            _, rep = run_one(catalog, gpus=2, kinds=kinds,
                             rate_per_s=DAGOPT_RATE, seed=seed,
                             optimize=optimized)
            thrs.append(rep.throughput_jobs_per_s)
            p99s.append(rep.latency["p99_us"])
        key = "optimized" if optimized else "baseline"
        rows[key] = {
            "mean_throughput_jobs_per_s": round(
                sum(thrs) / len(thrs), 2),
            "throughput_per_seed": [round(v, 2) for v in thrs],
            "mean_p99_us": round(sum(p99s) / len(p99s), 1),
        }
        print(f"dagopt [{key:9s}] mean thr "
              f"{rows[key]['mean_throughput_jobs_per_s']:.1f}/s  "
              f"p99 {rows[key]['mean_p99_us'] / 1e3:.1f} ms")
    base = rows["baseline"]["mean_throughput_jobs_per_s"]
    opt = rows["optimized"]["mean_throughput_jobs_per_s"]
    if opt <= base:
        raise AssertionError(
            f"dagopt-precompiled jobs served {opt:.1f}/s, not above the "
            f"unoptimized {base:.1f}/s")
    rows["throughput_gain"] = round(opt / base, 3)
    return rows


def showcase_trace(catalog, trace_dir):
    """One 4-GPU run whose fleet timeline ships as the CI artifact."""
    sim, rep = run_one(catalog, gpus=4,
                       kinds=("boot", "helr", "resnet", "aes"),
                       rate_per_s=240.0, seed=0)
    os.makedirs(trace_dir, exist_ok=True)
    path = os.path.join(trace_dir, "serving-fleet.trace.json")
    save_fleet_trace(sim.fleet_result(), path)
    print(f"fleet timeline -> {path}")
    return path


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default="BENCH_serving.json",
                    help="output JSON path")
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke: fewer seeds, coarser rate sweep")
    ap.add_argument("--trace-dir", default=None,
                    help="write the showcase Perfetto fleet timeline here")
    args = ap.parse_args(argv)

    seeds = (0, 1, 2) if args.quick else (0, 1, 2, 3, 4)
    rates = (80.0, 160.0, 320.0) if args.quick else (
        40.0, 80.0, 120.0, 160.0, 240.0, 320.0)

    catalog = default_catalog()
    report = {
        "bench": "bench_serving",
        "description": (
            "multi-GPU FHE serving: request-queue simulation, "
            "ciphertext batching and fleet scheduling over gpusim"
        ),
        "horizon_us": HORIZON_US,
        "seeds": list(seeds),
        "scaling": bench_scaling(catalog, seed=seeds[0]),
        "slo_curves": bench_slo_curves(catalog, seeds[0], rates),
        "policies": bench_policies(catalog, seeds),
        "dagopt": bench_dagopt(catalog, seeds),
    }
    if args.trace_dir:
        report["fleet_trace"] = showcase_trace(catalog, args.trace_dir)

    report["headline"] = {
        "speedup_4gpu": max(
            w["speedup_4gpu"] for w in report["scaling"]),
        "memory_aware_vs_round_robin_p99": report["policies"][
            "memory_aware_vs_round_robin_p99"],
        "dagopt_throughput_gain": report["dagopt"]["throughput_gain"],
    }
    print(f"\nheadline: 4-GPU scaling x"
          f"{report['headline']['speedup_4gpu']:.2f}; memory-aware p99 "
          f"{report['headline']['memory_aware_vs_round_robin_p99']:.2f}x "
          f"better than round-robin; dagopt serves x"
          f"{report['headline']['dagopt_throughput_gain']:.2f} throughput")

    out = os.path.abspath(args.out)
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}")
    return report


if __name__ == "__main__":
    main()
