"""§VI-B generality: the WarpDrive strategy across GPU generations.

The paper argues the fused tensor+CUDA design transfers to any GPU with
both unit types, with the warp balance re-derived from each device's pipe
ratio. This benchmark runs the variant comparison on the A100, H100 and
MI100 models and checks: (a) WD-FUSE still beats every single-pipe
variant everywhere; (b) the tensor work fraction the balancer picks
grows with the device's tensor:CUDA power ratio; (c) tensor-less devices
(V100) still run the CUDA-only variants.
"""

from repro.analysis import format_table
from repro.core import WarpDriveNtt, balance_fraction, costs, plan_work_counts
from repro.gpusim import A100_PCIE_80G, H100_SXM, MI100, V100
from repro.ntt import build_plan

N = 2**16
BATCH = 512
DEVICES = {
    "A100": A100_PCIE_80G,
    "H100": H100_SXM,
    "MI100": MI100,
}


def measure():
    counts = plan_work_counts(build_plan(N))
    data = {}
    for label, dev in DEVICES.items():
        row = {}
        for variant in ("wd-tensor", "wd-bo", "wd-fuse"):
            row[variant] = WarpDriveNtt(
                N, variant=variant, device=dev
            ).throughput_kops(BATCH)
        row["tensor_fraction"] = balance_fraction(
            dev,
            tensor_macs_per_unit=counts.ew_mul * costs.LIMB_GEMMS,
            cuda_ops_per_unit=counts.butterfly_ops(),
        )
        row["power_ratio"] = (
            dev.tensor_macs_per_cycle / dev.int32_ops_per_cycle
        )
        data[label] = row
    # V100: CUDA-only fallback.
    data["V100 (no INT8 TC)"] = {
        "wd-bo": WarpDriveNtt(N, variant="wd-bo",
                              device=V100).throughput_kops(BATCH),
    }
    return data


def build_table(data):
    rows = []
    for label in DEVICES:
        d = data[label]
        rows.append([
            label,
            round(d["wd-tensor"]),
            round(d["wd-bo"]),
            round(d["wd-fuse"]),
            f"{d['tensor_fraction']:.2f}",
            f"{d['power_ratio']:.0f}x",
        ])
    rows.append([
        "V100 (no INT8 TC)", None, round(data["V100 (no INT8 TC)"]["wd-bo"]),
        None, "0.00", "0x",
    ])
    return format_table(
        ["device", "WD-Tensor", "WD-BO", "WD-FUSE", "tensor frac",
         "TC:INT32"],
        rows,
        title=f"Generality — NTT variants across devices "
              f"(N=2^16, batch {BATCH}, KOPS)",
    )


def test_generality_devices(benchmark, record_table):
    data = benchmark(measure)
    record_table("generality_devices", build_table(data))

    for label in DEVICES:
        d = data[label]
        # The fused kernel wins on every device with both unit types.
        assert d["wd-fuse"] > d["wd-tensor"]
        assert d["wd-fuse"] > d["wd-bo"]
    # The balancer pushes more work to tensor cores on beefier TC parts.
    assert (data["H100"]["tensor_fraction"]
            >= data["A100"]["tensor_fraction"])
    assert (data["A100"]["tensor_fraction"]
            > data["MI100"]["tensor_fraction"] * 0.99)
    # H100 outruns A100 outright.
    assert data["H100"]["wd-fuse"] > data["A100"]["wd-fuse"]
    # V100 still works via the butterfly path.
    assert data["V100 (no INT8 TC)"]["wd-bo"] > 0
