"""Figure 6: throughput of the five NTT variants across SET-A..E.

The concurrency experiment of §V-D: WD-FUSE (tensor + butterfly warps)
beats every single-pipe variant; WD-Tensor leads the single-pipe pack;
WD-FTC sits between WD-CUDA and WD-Tensor.
"""

from repro.analysis import format_table
from repro.ckks import ParameterSets
from repro.core import VARIANTS, WarpDriveNtt

BATCH = 1024
SETS = ["SET-A", "SET-B", "SET-C", "SET-D", "SET-E"]


def measure():
    data = {}
    for variant in VARIANTS:
        data[variant] = {}
        for name in SETS:
            n = ParameterSets.by_name(name).n
            data[variant][name] = WarpDriveNtt(
                n, variant=variant
            ).throughput_kops(BATCH)
    return data


def build_table(data):
    rows = []
    for variant in VARIANTS:
        rows.append(
            [variant] + [round(data[variant][s]) for s in SETS]
        )
    rows.append(
        ["fuse vs tensor"]
        + [f"+{100 * (data['wd-fuse'][s] / data['wd-tensor'][s] - 1):.1f}%"
           for s in SETS]
    )
    rows.append(["  paper"] + ["+4..7%"] * 5)
    return format_table(
        ["variant"] + SETS, rows,
        title=f"Fig. 6 — NTT variant throughput, KOPS (batch {BATCH})",
    )


def test_fig06_variant_throughput(benchmark, record_table):
    data = benchmark(measure)
    record_table("fig06_variant_throughput", build_table(data))

    for s in SETS:
        fuse = data["wd-fuse"][s]
        tensor = data["wd-tensor"][s]
        # WD-FUSE beats every unfused approach (the paper's headline).
        for v in ("wd-tensor", "wd-cuda", "wd-bo"):
            assert fuse > data[v][s], f"{s}: wd-fuse must beat {v}"
        # The gain over WD-Tensor is single-digit percent (paper: 4-7%;
        # ours spans 1.7-7.4% across sets).
        assert 0.01 < fuse / tensor - 1 < 0.12
        # Tensor leads the single-pipe variants (paper: +12-28% vs CUDA,
        # +4-10% vs BO).
        assert tensor > data["wd-bo"][s] > data["wd-cuda"][s]
        # FTC lands between CUDA and Tensor.
        assert data["wd-cuda"][s] < data["wd-ftc"][s] < tensor
        # Each fusion beats its CUDA-based ingredient.
        assert data["wd-ftc"][s] > data["wd-cuda"][s]
        assert fuse > data["wd-bo"][s]
