"""Table X: NTT compute/memory utilization, TensorFHE vs WarpDrive.

The paper's claim: WarpDrive's compute throughput utilization is
1.54-1.89x TensorFHE's while memory utilization stays comparable
(0.90-1.02x) — i.e. the speedup comes from doing *less memory work*, not
from squeezing more bandwidth.
"""

from repro.analysis import format_table
from repro.baselines import TensorFheNtt
from repro.baselines.published import TABLE_X_NTT_UTILIZATION
from repro.ckks import ParameterSets
from repro.core import WarpDriveNtt
from repro.gpusim import aggregate

SETS = ["SET-C", "SET-D", "SET-E"]
BATCH = 1024


def measure():
    data = {}
    for s in SETS:
        n = ParameterSets.by_name(s).n
        tf = aggregate(
            [e.profile for e in TensorFheNtt(n).simulate(BATCH).entries]
        )
        wd = aggregate(
            [e.profile for e in WarpDriveNtt(n).simulate(BATCH).entries]
        )
        data[s] = {"TensorFHE": tf, "WarpDrive": wd}
    return data


def build_table(data):
    pub = TABLE_X_NTT_UTILIZATION
    rows = []
    for metric, attr, pub_key in (
        ("Compute TP util %", "compute_utilization", "compute_util"),
        ("Memory TP util %", "memory_utilization", "memory_util"),
    ):
        for scheme in ("TensorFHE", "WarpDrive"):
            rows.append(
                [f"{metric}: {scheme} (sim)"]
                + [round(getattr(data[s][scheme], attr), 1) for s in SETS]
            )
            rows.append(["  paper"] + [pub[scheme][pub_key][s]
                                       for s in SETS])
        rows.append(
            ["WarpDrive/TensorFHE (sim)"]
            + [f"{getattr(data[s]['WarpDrive'], attr) / getattr(data[s]['TensorFHE'], attr):.2f}x"
               for s in SETS]
        )
    return format_table(
        ["metric / scheme"] + SETS, rows,
        title=f"Table X — NTT utilization (batch {BATCH})",
        col_width=14,
    )


def test_table10_ntt_utilization(benchmark, record_table):
    data = benchmark(measure)
    record_table("table10_ntt_utilization", build_table(data))

    for s in SETS:
        wd, tf = data[s]["WarpDrive"], data[s]["TensorFHE"]
        # Compute utilization improves (paper: 1.54-1.89x).
        assert wd.compute_utilization > 1.1 * tf.compute_utilization, (
            f"{s}: compute util must improve"
        )
        # Memory utilization stays in the same ballpark (paper:
        # 0.90-1.02x) — the win is less traffic, not more bandwidth.
        ratio = wd.memory_utilization / tf.memory_utilization
        assert 0.5 < ratio < 1.6, f"{s}: memory util ratio {ratio:.2f}"
