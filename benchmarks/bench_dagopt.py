"""Benchmark: the trace-DAG optimizer over recorded CKKS workloads.

Records three functional workloads at proxy scale (the SET-C slim
bootstrap, one mini-HELR training iteration, one ResNet basic block),
runs the :mod:`repro.trace.opt` pass pipeline over each recording,
lowers the recorded and the optimized trace at the target ring, and
prices both on the dependency-aware scheduler.  The optimized DAG is
additionally re-ordered by :func:`~repro.trace.opt.schedule_search`.

Hard assertions (the perf contract of DESIGN.md §12):

* every optimized kernel spec passes ``KernelSpec.validate``;
* per workload, the optimized schedule is never slower than the
  recorded one;
* the simulated speedup reaches ``SPEEDUP_TARGET`` (1.15x) on at least
  ``MIN_AT_TARGET`` (2) of the three workloads.

Run::

    PYTHONPATH=src python benchmarks/bench_dagopt.py             # full run
    PYTHONPATH=src python benchmarks/bench_dagopt.py --reps 1    # CI smoke
    PYTHONPATH=src python benchmarks/bench_dagopt.py \
        --trace-dir traces/                                      # Perfetto pair

Results land in ``BENCH_dagopt.json`` (see ``--out``); ``--trace-dir``
additionally writes a ``<workload>.{baseline,optimized}.trace.json``
Chrome-tracing pair per workload so a before/after diff can be eyeballed
in Perfetto (fused launches carry ``fused``/``fold_*`` args).
"""

from __future__ import annotations

import argparse
import json
import os
import time

from repro.core.kernels import WORD_BYTES
from repro.gpusim import save_chrome_trace
from repro.trace.lowering import lower_trace
from repro.trace.opt import (
    optimize_trace,
    schedule_search,
    trace_pool_peak_rows,
)
from repro.workloads.recorded import (
    record_bootstrap_trace,
    record_helr_iteration_trace,
    record_resnet_block_trace,
)

SPEEDUP_TARGET = 1.15
MIN_AT_TARGET = 2

WORKLOADS = (
    ("SET-C bootstrap", record_bootstrap_trace),
    ("HELR iteration", record_helr_iteration_trace),
    ("ResNet block", record_resnet_block_trace),
)


def bench_workload(name, recorder, *, reps=3, trace_dir=None):
    trace = recorder()
    t0 = time.perf_counter()
    opt, report = optimize_trace(trace)  # verify=True: legality checked
    opt_wall_ms = (time.perf_counter() - t0) * 1e3

    base_dag = lower_trace(trace, style="pe")
    opt_dag = lower_trace(opt, style="pe")
    for node in opt_dag.nodes:
        node.spec.validate()

    base_res = opt_res = None
    best_us = float("inf")
    scores = {}
    for _ in range(max(1, reps)):
        base_res = base_dag.run()
        opt_res = opt_dag.run()
        best_dag, scores = schedule_search(opt_dag)
        best_us = min(scores.values())
    baseline_us = base_res.elapsed_us
    if best_us > baseline_us + 1e-6:
        raise AssertionError(
            f"{name}: optimized schedule ({best_us:.1f}us) slower than "
            f"recorded baseline ({baseline_us:.1f}us)"
        )

    peak_before = trace_pool_peak_rows(trace)
    peak_after = trace_pool_peak_rows(opt)
    n = base_dag.n
    if trace_dir:
        os.makedirs(trace_dir, exist_ok=True)
        slug = name.lower().replace(" ", "-")
        save_chrome_trace(
            base_res, os.path.join(trace_dir, f"{slug}.baseline.trace.json")
        )
        best_res = best_dag.run()
        save_chrome_trace(
            best_res, os.path.join(trace_dir, f"{slug}.optimized.trace.json")
        )
    return {
        "name": name,
        "events_before": len(trace.events),
        "events_after": len(opt.events),
        "kernels_before": base_dag.kernel_count,
        "kernels_after": opt_dag.kernel_count,
        "baseline_us": baseline_us,
        "optimized_us": opt_res.elapsed_us,
        "best_us": best_us,
        "best_strategy": min(scores, key=scores.get),
        "schedule_scores_us": {k: round(v, 2) for k, v in scores.items()},
        "speedup": baseline_us / best_us,
        "pool_peak_rows_before": peak_before,
        "pool_peak_rows_after": peak_after,
        "pool_peak_hbm_mb_before": peak_before * n * WORD_BYTES / 2**20,
        "pool_peak_hbm_mb_after": peak_after * n * WORD_BYTES / 2**20,
        "optimize_wall_ms": round(opt_wall_ms, 1),
        "passes": [s.summary() for s in report.passes],
    }


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--reps", type=int, default=3,
                    help="pricing repetitions (simulation is "
                         "deterministic; >1 only steadies wall times)")
    ap.add_argument("--out", default="BENCH_dagopt.json",
                    help="output JSON path")
    ap.add_argument("--trace-dir", default=None,
                    help="write Perfetto before/after trace pairs here")
    args = ap.parse_args(argv)

    report = {
        "bench": "bench_dagopt",
        "description": (
            "trace-DAG optimizer: fusion, rotation dedup and schedule "
            "search over recorded CKKS runs, priced on the simulator"
        ),
        "reps": args.reps,
        "speedup_target": SPEEDUP_TARGET,
        "workloads": [],
    }
    hits = 0
    for name, recorder in WORKLOADS:
        w = bench_workload(name, recorder, reps=args.reps,
                           trace_dir=args.trace_dir)
        report["workloads"].append(w)
        if w["speedup"] >= SPEEDUP_TARGET:
            hits += 1
        print(f"{name:18s} events {w['events_before']:4d}->"
              f"{w['events_after']:4d}  kernels {w['kernels_before']:4d}->"
              f"{w['kernels_after']:4d}  {w['baseline_us']:8.1f} us -> "
              f"{w['best_us']:8.1f} us  ({w['best_strategy']})  "
              f"speedup {w['speedup']:.2f}x  "
              f"pool {w['pool_peak_rows_before']}->"
              f"{w['pool_peak_rows_after']} rows")
    if hits < MIN_AT_TARGET:
        raise AssertionError(
            f"only {hits} workload(s) reached {SPEEDUP_TARGET:.2f}x "
            f"(need {MIN_AT_TARGET})"
        )
    report["workloads_at_target"] = hits
    report["headline_speedup"] = max(
        w["speedup"] for w in report["workloads"]
    )
    print(f"\nheadline: {hits}/{len(WORKLOADS)} workloads at "
          f">= {SPEEDUP_TARGET:.2f}x; best "
          f"{report['headline_speedup']:.2f}x")

    out = os.path.abspath(args.out)
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}")
    return report


if __name__ == "__main__":
    main()
