"""Figure 7: sensitivity to threads per block (SET-D).

Sweeps T in {64, 128, 256, 512, 1024} over the homomorphic operations and
checks the paper's finding: T=256 is optimal (or within noise of optimal)
for every operation, which is why the framework defaults to it.
"""

from repro.analysis import format_table
from repro.ckks import ParameterSets
from repro.core import GeometryConfig, OperationScheduler

THREADS = [64, 128, 256, 512, 1024]
OPS = ["hadd", "pmult", "rescale", "hrotate", "hmult"]
PARAMS = ParameterSets.set_d()


def measure():
    data = {}
    for t in THREADS:
        sched = OperationScheduler(
            PARAMS, geometry=GeometryConfig(threads_per_block=t)
        )
        for op in OPS:
            data.setdefault(op, {})[t] = sched.latency_us(op)
    return data


def build_table(data):
    rows = []
    for op in OPS:
        best = min(data[op].values())
        rows.append(
            [op] + [round(data[op][t] / best, 3) for t in THREADS]
        )
    return format_table(
        ["op \\ T"] + [str(t) for t in THREADS], rows,
        title="Fig. 7 — normalized latency vs threads per block (SET-D); "
              "1.0 = best",
    )


def test_fig07_threads_per_block(benchmark, record_table):
    data = benchmark(measure)
    record_table("fig07_threads_per_block", build_table(data))

    for op in OPS:
        best_t = min(data[op], key=data[op].get)
        # T=256 is optimal or within 5% of the optimum for every op.
        assert data[op][256] <= data[op][best_t] * 1.05, (
            f"{op}: T=256 is {data[op][256] / data[op][best_t]:.2f}x "
            f"the best (T={best_t})"
        )
    # The extremes are never better than T=256.
    for op in OPS:
        assert data[op][64] >= data[op][256] * 0.999
