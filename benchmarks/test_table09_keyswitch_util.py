"""Table IX: KeySwitch kernel count and utilization, 100x_opt vs WarpDrive.

The PE-kernel experiment (§IV-C / Fig. 4): WarpDrive's ciphertext-level
KeySwitch is a fixed 11 kernels at every parameter set, versus the growing
polynomial-level launch count of 100x_opt, with higher compute
utilization.
"""

from repro.analysis import format_table
from repro.baselines import HundredXOps
from repro.baselines.published import TABLE_IX_KEYSWITCH
from repro.ckks import ParameterSets
from repro.core import OperationScheduler

SETS = ["SET-C", "SET-D", "SET-E"]


def measure():
    data = {}
    for s in SETS:
        params = ParameterSets.by_name(s)
        data[s] = {
            "100x_opt": HundredXOps(params,
                                    optimized=True).keyswitch_profile(),
            "WarpDrive": OperationScheduler(params).profile("keyswitch"),
        }
    return data


def build_table(data):
    pub = TABLE_IX_KEYSWITCH
    rows = []
    for metric, key in (("Kernel num", "kernels"),
                        ("Compute util %", "compute_util"),
                        ("Memory util %", "memory_util")):
        for scheme in ("100x_opt", "WarpDrive"):
            rows.append(
                [f"{metric}: {scheme} (sim)"]
                + [round(data[s][scheme][key], 1) for s in SETS]
            )
            rows.append(
                ["  paper"] + [pub[scheme][key][s] for s in SETS]
            )
        if key == "kernels":
            rows.append(
                ["Reduction (sim)"]
                + [f"{100 * (1 - data[s]['WarpDrive'][key] / data[s]['100x_opt'][key]):.1f}%"
                   for s in SETS]
            )
            rows.append(["  paper"] + ["81.4%", "87.8%", "90.0%"])
    return format_table(
        ["metric / scheme"] + SETS, rows,
        title="Table IX — KeySwitch kernels and utilization",
        col_width=14,
    )


def test_table09_keyswitch_util(benchmark, record_table):
    data = benchmark(measure)
    record_table("table09_keyswitch_util", build_table(data))

    for s in SETS:
        # WarpDrive: fixed 11 kernels (the paper's exact number).
        assert data[s]["WarpDrive"]["kernels"] == 11
        # Kernel reduction at least 80% (paper: 81.4-90.0%).
        reduction = 1 - 11 / data[s]["100x_opt"]["kernels"]
        assert reduction > 0.8
        # PE kernels raise compute utilization (paper: 1.13-1.87x).
        assert (data[s]["WarpDrive"]["compute_util"]
                > data[s]["100x_opt"]["compute_util"])
    # The 100x_opt launch count grows with the set; WarpDrive's doesn't.
    counts = [data[s]["100x_opt"]["kernels"] for s in SETS]
    assert counts == sorted(counts) and counts[0] < counts[-1]
