"""Benchmark: knob-space search vs the hand-picked recording config.

The gym's contract, asserted hard: searching the declared co-design
knobs (``recorded.fuse``, ``ntt.variant``,
``geometry.threads_per_block``, ``dagopt.optimize``) over the recorded
slim bootstrap must find an assignment whose simulated latency
**matches or beats** the hand-picked
:data:`~repro.workloads.recorded.RECORDED_BOOT_CONFIG` baseline — and
do so deterministically: re-running a searcher with the same seed must
reproduce the identical trajectory, point for point.

Assertions:

* for every searcher: ``best_latency_us <= baseline_latency_us``
  (structural — evaluation 0 is the baseline itself);
* the best assignment across searchers strictly beats the baseline
  (the hand-picked config is known not to be the grid optimum);
* a same-seed re-run of the hill climber reproduces its trajectory
  bit-identically.

Run::

    PYTHONPATH=src python benchmarks/bench_gym.py            # full run
    PYTHONPATH=src python benchmarks/bench_gym.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/bench_gym.py \
        --plot gym_fitness.svg                               # + artifact

Results land in ``BENCH_gym.json`` (see ``--out``);
``repro.reproduce``'s ``gym_summary`` section reads that file.
"""

from __future__ import annotations

import argparse
import json
import os

from repro.gym import TuningEnv, run_searcher, write_fitness_svg
from repro.workloads.recorded import RECORDED_BOOT_CONFIG

SEED = 0

#: (searcher, kwargs) per mode.  Budgets are small on purpose: the grid
#: has 5 x 5 x 5 x 2 points and recordings are cached per fuse value, so
#: a dozen evaluations already cover the profitable moves.
PLANS = {
    "full": (
        ("random", {"steps": 12}),
        ("hill", {"steps": 12}),
        ("evolutionary", {"generations": 3, "population": 6}),
    ),
    "quick": (
        ("random", {"steps": 4}),
        ("hill", {"steps": 6}),
    ),
}


def run_plan(plan, *, workload="boot", objective="latency", seed=SEED):
    results = []
    for searcher, kwargs in plan:
        env = TuningEnv(workload, objective=objective)
        result = run_searcher(searcher, env, seed=seed, **kwargs)
        if result.best_latency_us > result.baseline_latency_us + 1e-6:
            raise AssertionError(
                f"{searcher}: best ({result.best_latency_us:.1f}us) "
                f"worse than the hand-picked baseline "
                f"({result.baseline_latency_us:.1f}us)"
            )
        results.append(result)
        print(f"{searcher:14s} baseline {result.baseline_latency_us:9.1f}"
              f" us -> best {result.best_latency_us:9.1f} us  "
              f"({result.evaluations} evals)  {result.best_assignment}")
    return results


def assert_deterministic(*, workload="boot", steps=4, seed=SEED):
    """Same (searcher, seed, budget) => identical trajectory."""
    runs = []
    for _ in range(2):
        env = TuningEnv(workload)
        result = run_searcher("hill", env, seed=seed, steps=steps)
        runs.append([
            (p.assignment, p.reward, p.latency_us)
            for p in result.trajectory.points
        ])
    if runs[0] != runs[1]:
        raise AssertionError(
            "hill climb is not seed-deterministic: same seed produced "
            "different trajectories"
        )
    return len(runs[0])


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke: fewer searchers, smaller budgets")
    ap.add_argument("--workload", default="boot",
                    help="gym workload (default: boot)")
    ap.add_argument("--out", default="BENCH_gym.json",
                    help="output JSON path")
    ap.add_argument("--plot", default=None,
                    help="write a best-so-far fitness SVG here")
    args = ap.parse_args(argv)

    mode = "quick" if args.quick else "full"
    print(f"searching {args.workload} knob space ({mode}; baseline = "
          f"hand-picked {RECORDED_BOOT_CONFIG})")
    results = run_plan(PLANS[mode], workload=args.workload)

    det_points = assert_deterministic(workload=args.workload)
    print(f"determinism: seed-{SEED} hill re-run reproduced "
          f"{det_points} trajectory points bit-identically")

    best = min(results, key=lambda r: r.best_latency_us)
    baseline_us = results[0].baseline_latency_us
    if not args.quick and best.best_latency_us >= baseline_us:
        raise AssertionError(
            "no searcher strictly beat the hand-picked baseline "
            f"({baseline_us:.1f}us) — the grid optimum regressed"
        )

    report = {
        "bench": "bench_gym",
        "description": (
            "design-space search over declared tuning knobs vs the "
            "hand-picked recorded-bootstrap config"
        ),
        "mode": mode,
        "workload": args.workload,
        "seed": SEED,
        "hand_picked_config": dict(RECORDED_BOOT_CONFIG),
        "baseline_latency_us": baseline_us,
        "best_latency_us": best.best_latency_us,
        "best_searcher": best.searcher,
        "best_assignment": dict(best.best_assignment),
        "speedup_vs_hand_picked": baseline_us / best.best_latency_us,
        "deterministic": True,
        "searchers": [r.to_dict() for r in results],
    }
    print(f"\nheadline: {best.searcher} found "
          f"{best.best_latency_us:.1f}us vs hand-picked "
          f"{baseline_us:.1f}us "
          f"({report['speedup_vs_hand_picked']:.2f}x)")

    if args.plot:
        write_fitness_svg(results, args.plot,
                          title=f"{args.workload} knob search "
                                f"(baseline = hand-picked)")
        print(f"plot -> {os.path.abspath(args.plot)}")

    out = os.path.abspath(args.out)
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}")
    return report


if __name__ == "__main__":
    main()
