"""Robustness and sensitivity studies beyond the paper's tables.

1. **Calibration robustness** — the simulator's one global calibration
   scalar (`_SILICON_GAP`) is swept ±50%; every qualitative conclusion
   (variant ordering, WarpDrive-vs-TensorFHE advantage) must be invariant,
   demonstrating that only absolute magnitudes depend on the calibration.
2. **dnum sensitivity** — §V-A notes KeySwitch supports different `dnum`
   settings; this sweep exposes the classic hybrid-key-switching
   trade-off (more digits = more NTT work per switch, fewer digits = a
   larger special-prime budget) as HMULT latency across dnum.
"""

from repro.analysis import format_table
from repro.baselines import TensorFheNtt
from repro.ckks import CkksParams, ParameterSets
from repro.core import VARIANTS, OperationScheduler, WarpDriveNtt

N = 2**14
BATCH = 512
GAPS = [0.2, 0.4, 0.8]


def measure_gap_sweep():
    data = {}
    tf = TensorFheNtt(N).throughput_kops(BATCH)
    for gap in GAPS:
        row = {
            v: WarpDriveNtt(N, variant=v,
                            silicon_gap=gap).throughput_kops(BATCH)
            for v in VARIANTS
        }
        row["tf_ratio"] = row["wd-fuse"] / tf
        data[gap] = row
    return data


def measure_dnum_sweep():
    base = ParameterSets.set_c()
    out = {}
    for dnum in (3, 5, 8, 15):
        # Keep the Han-Ki noise condition: special primes cover a digit.
        alpha = -(-base.num_primes // dnum)
        params = CkksParams(
            n=base.n, max_level=base.max_level, num_special=alpha,
            dnum=dnum, scale_bits=base.scale_bits,
            name=f"set-c-dnum{dnum}",
        )
        sched = OperationScheduler(params)
        out[dnum] = {
            "hmult_us": sched.latency_us("hmult"),
            "special_primes": alpha,
        }
    return out


def build_tables(gaps, dnums):
    rows = []
    for gap, row in gaps.items():
        rows.append(
            [f"gap={gap}"]
            + [round(row[v]) for v in VARIANTS]
            + [f"{row['tf_ratio']:.1f}x"]
        )
    t1 = format_table(
        ["calibration"] + list(VARIANTS) + ["vs TF"], rows,
        title=f"Calibration robustness — variant KOPS at N=2^14 under "
              f"silicon-gap sweep",
    )
    rows2 = [
        [f"dnum={d}", round(v["hmult_us"], 1), v["special_primes"]]
        for d, v in dnums.items()
    ]
    t2 = format_table(
        ["config", "HMULT us", "special primes (K)"], rows2,
        title="dnum sensitivity — HMULT latency at SET-C geometry",
    )
    return t1 + "\n\n" + t2


def test_sensitivity(benchmark, record_table):
    gaps = benchmark(measure_gap_sweep)
    dnums = measure_dnum_sweep()
    record_table("sensitivity", build_tables(gaps, dnums))

    # Orderings are calibration-invariant.
    for gap, row in gaps.items():
        assert row["wd-fuse"] > row["wd-tensor"] > row["wd-bo"] \
            > row["wd-cuda"]
        assert row["wd-cuda"] < row["wd-ftc"] < row["wd-tensor"]
        assert row["tf_ratio"] > 3, "WD-vs-TF advantage survives"
    # Throughput scales ~linearly with the gap (sanity of the knob).
    assert gaps[0.8]["wd-fuse"] > 1.5 * gaps[0.4]["wd-fuse"]

    # dnum trade-off: small dnum (big digits, more special primes) and
    # huge dnum (many digits) both cost more than a middle setting.
    latencies = {d: v["hmult_us"] for d, v in dnums.items()}
    assert latencies[15] > min(latencies.values())
    # K shrinks as dnum grows (the memory/noise side of the trade-off).
    ks = [v["special_primes"] for v in dnums.values()]
    assert ks == sorted(ks, reverse=True)
