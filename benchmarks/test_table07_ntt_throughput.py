"""Table VII: NTT/INTT throughput — CPU vs TensorFHE vs WarpDrive.

Regenerates the KOPS rows for SET-A..E from the simulator (WarpDrive,
TensorFHE structural baselines) and the calibrated CPU model, printing
the paper's numbers alongside. Shape checks: WarpDrive beats TensorFHE by
roughly an order of magnitude at every set, and beats the CPU by three
orders of magnitude.
"""

import pytest

from repro.analysis import format_table
from repro.baselines import TensorFheNtt, cpu_ntt_throughput_kops
from repro.baselines.published import TABLE_VII_NTT_KOPS
from repro.ckks import ParameterSets
from repro.core import WarpDriveNtt

BATCH = 1024
SETS = ["SET-A", "SET-B", "SET-C", "SET-D", "SET-E"]


def measure():
    data = {"CPU (sim)": {}, "TensorFHE (sim)": {}, "WarpDrive (sim)": {},
            "WarpDrive INTT (sim)": {}}
    for name in SETS:
        n = ParameterSets.by_name(name).n
        if n <= 2**14:
            data["CPU (sim)"][name] = cpu_ntt_throughput_kops(n)
        tf = TensorFheNtt(n)
        wd = WarpDriveNtt(n)
        data["TensorFHE (sim)"][name] = tf.throughput_kops(BATCH)
        data["WarpDrive (sim)"][name] = wd.throughput_kops(BATCH)
        # INTT costs the same kernel structure plus the n^-1 scale.
        intt_us = wd.simulate(BATCH).elapsed_us
        data["WarpDrive INTT (sim)"][name] = BATCH / intt_us * 1e3
    return data


def build_table(data):
    rows = []
    for scheme in ("CPU (sim)", "TensorFHE (sim)", "WarpDrive (sim)"):
        rows.append(
            [scheme] + [round(data[scheme].get(s, 0), 1) or None
                        for s in SETS]
        )
        paper_key = scheme.split(" ")[0] if "CPU" not in scheme else \
            "CPU Baseline"
        paper = TABLE_VII_NTT_KOPS.get(
            {"CPU (sim)": "CPU Baseline", "TensorFHE (sim)": "TensorFHE",
             "WarpDrive (sim)": "WarpDrive"}[scheme]
        )
        rows.append(["  paper"] + [paper[s] for s in SETS])
    wd, tf = data["WarpDrive (sim)"], data["TensorFHE (sim)"]
    rows.append(
        ["Speedup over TensorFHE"]
        + [f"{wd[s] / tf[s]:.1f}x" for s in SETS]
    )
    rows.append(
        ["  paper"] + ["13.4x", "10.4x", "10.0x", "10.2x", "9.7x"]
    )
    return format_table(
        ["scheme"] + SETS, rows,
        title=f"Table VII — NTT throughput, KOPS (batch {BATCH})",
    )


def test_table07_ntt_throughput(benchmark, record_table):
    data = benchmark(measure)
    record_table("table07_ntt_throughput", build_table(data))

    wd, tf = data["WarpDrive (sim)"], data["TensorFHE (sim)"]
    for s in SETS:
        # Order-of-magnitude advantage at every set (paper: 9.7-13.4x).
        assert 5 < wd[s] / tf[s] < 60, f"{s}: WD/TF ratio out of range"
    for s in ("SET-A", "SET-B", "SET-C"):
        cpu = data["CPU (sim)"][s]
        assert wd[s] / cpu > 500, "three-orders-of-magnitude CPU speedup"
    # Throughput decreases with ring size for every scheme.
    for scheme in ("TensorFHE (sim)", "WarpDrive (sim)"):
        vals = [data[scheme][s] for s in SETS]
        assert vals == sorted(vals, reverse=True)
