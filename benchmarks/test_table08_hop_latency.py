"""Table VIII: latency of key homomorphic operations (us), SET-C/D/E.

Simulated WarpDrive and 100x/100x_opt rows next to the paper's published
columns (including the closed-source Liberate.FHE). Shape checks: the
paper's per-set speedup floors for WarpDrive over 100x_opt — >=82%/51%/30%
for HMULT — and the operation ordering.
"""

from repro.analysis import format_table
from repro.baselines import HundredXOps
from repro.baselines.published import TABLE_VIII_LATENCY_US
from repro.ckks import ParameterSets
from repro.core import OperationScheduler

SETS = ["SET-C", "SET-D", "SET-E"]
OPS = [("HMULT", "hmult"), ("HROTATE", "hrotate"),
       ("RESCALE", "rescale"), ("HADD", "hadd")]


def measure():
    data = {}
    for set_name in SETS:
        params = ParameterSets.by_name(set_name)
        wd = OperationScheduler(params)
        opt = HundredXOps(params, optimized=True)
        orig = HundredXOps(params, optimized=False)
        for table_op, op in OPS:
            cell = data.setdefault(table_op, {})
            cell.setdefault("WarpDrive (sim)", {})[set_name] = \
                wd.latency_us(op)
            cell.setdefault("100x_opt (sim)", {})[set_name] = \
                opt.latency_us(op)
            cell.setdefault("100x V100 (sim)", {})[set_name] = \
                orig.latency_us(op)
    return data


def build_table(data):
    rows = []
    for table_op, _ in OPS:
        published = TABLE_VIII_LATENCY_US[table_op]
        rows.append([f"{table_op}: Liberate.FHE (paper)"]
                    + [published["Liberate.FHE"][s] for s in SETS])
        rows.append(["  TensorFHE_repl (paper)"]
                    + [published["TensorFHE_repl"][s] for s in SETS])
        rows.append(["  100x_opt (sim)"]
                    + [round(data[table_op]["100x_opt (sim)"][s], 1)
                       for s in SETS])
        rows.append(["  100x_opt (paper)"]
                    + [published["100x_opt"][s] for s in SETS])
        rows.append(["  WarpDrive (sim)"]
                    + [round(data[table_op]["WarpDrive (sim)"][s], 1)
                       for s in SETS])
        rows.append(["  WarpDrive (paper)"]
                    + [published["WarpDrive"][s] for s in SETS])
        rows.append(
            ["  speedup sim (paper)"]
            + [
                f"{data[table_op]['100x_opt (sim)'][s] / data[table_op]['WarpDrive (sim)'][s]:.2f}x"
                f" ({published['100x_opt'][s] / published['WarpDrive'][s]:.2f}x)"
                for s in SETS
            ]
        )
    return format_table(
        ["operation / scheme"] + SETS, rows,
        title="Table VIII — homomorphic operation latency (us)",
        col_width=16,
    )


def test_table08_hop_latency(benchmark, record_table):
    data = benchmark(measure)
    record_table("table08_hop_latency", build_table(data))

    # Paper's HMULT speedup floors over 100x_opt: 82% / 51% / 30%.
    floors = {"SET-C": 1.5, "SET-D": 1.3, "SET-E": 1.2}
    for s in SETS:
        ratio = (data["HMULT"]["100x_opt (sim)"][s]
                 / data["HMULT"]["WarpDrive (sim)"][s])
        assert ratio > floors[s], f"{s}: HMULT speedup {ratio:.2f}"
    # Every op: WarpDrive at least matches 100x_opt.
    for table_op, _ in OPS:
        for s in SETS:
            assert (data[table_op]["WarpDrive (sim)"][s]
                    <= data[table_op]["100x_opt (sim)"][s] * 1.05)
    # Latency grows with the parameter set for the heavy ops.
    for table_op in ("HMULT", "HROTATE"):
        vals = [data[table_op]["WarpDrive (sim)"][s] for s in SETS]
        assert vals == sorted(vals)
    # WarpDrive simulated latencies within ~2.5x of the paper's columns.
    for table_op, _ in OPS:
        for s in SETS:
            sim = data[table_op]["WarpDrive (sim)"][s]
            paper = TABLE_VIII_LATENCY_US[table_op]["WarpDrive"][s]
            assert 0.3 < sim / paper < 3.0, (
                f"{table_op}/{s}: sim {sim:.0f} vs paper {paper}"
            )
