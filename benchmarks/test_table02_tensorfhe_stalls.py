"""Table II: stall profile of the TensorFHE 5-stage NTT (N=2^16, B=1024).

Regenerates the stall-cycles-per-issued-instruction row and the
memory-related stall percentages per pipeline stage, and checks the
paper's qualitative findings: Stage 1 is LG-Throttle-dominated, every
stage is majority-memory-stalled, and Long Scoreboard appears everywhere.
"""

from repro.analysis import format_table
from repro.baselines import TensorFheNtt
from repro.baselines.published import TABLE_II_TENSORFHE_STALLS
from repro.gpusim import StallReason, aggregate

N = 2**16
BATCH = 1024


def build_table():
    ntt = TensorFheNtt(N)
    stage_profiles = ntt.stage_profiles(batch=BATCH)
    stages = sorted(stage_profiles)
    rows = []
    aggs = {s: aggregate(stage_profiles[s]) for s in stages}
    rows.append(
        ["Stall cycles / issued instr (sim)"]
        + [round(aggs[s].stall_cycles_per_issued, 1) for s in stages]
    )
    rows.append(
        ["  paper"]
        + [TABLE_II_TENSORFHE_STALLS[s]["stall_per_issued"] for s in stages]
    )
    rows.append(
        ["Memory-related stalls % (sim)"]
        + [round(100 * aggs[s].memory_stall_fraction, 1) for s in stages]
    )
    rows.append(
        ["  paper"]
        + [TABLE_II_TENSORFHE_STALLS[s]["memory_related_pct"]
           for s in stages]
    )
    rows.append(
        ["LG Throttle % (sim)"]
        + [round(100 * aggs[s].stalls.fraction(StallReason.LG_THROTTLE), 1)
           for s in stages]
    )
    rows.append(
        ["  paper"]
        + [TABLE_II_TENSORFHE_STALLS[s]["lg_throttle_pct"] for s in stages]
    )
    rows.append(
        ["Long Scoreboard % (sim)"]
        + [round(
            100 * aggs[s].stalls.fraction(StallReason.LONG_SCOREBOARD), 1
        ) for s in stages]
    )
    rows.append(
        ["  paper"]
        + [TABLE_II_TENSORFHE_STALLS[s]["long_scoreboard_pct"]
           for s in stages]
    )
    table = format_table(
        ["metric"] + stages, rows,
        title=f"Table II — TensorFHE 5-stage NTT stalls "
              f"(N=2^16, batch={BATCH})",
    )
    return table, aggs


def test_table02_tensorfhe_stalls(benchmark, record_table):
    table, aggs = benchmark(build_table)
    record_table("table02_tensorfhe_stalls", table)

    # Shape checks (the paper's qualitative claims).
    stage1 = aggs["Stage 1"]
    assert stage1.stalls.fraction(StallReason.LG_THROTTLE) > 0.3, \
        "Stage 1 must be LG-Throttle dominated"
    for stage, agg in aggs.items():
        assert agg.memory_stall_fraction > 0.5, \
            f"{stage} must be majority memory-stalled (paper: >54%)"
        assert agg.stalls.fraction(StallReason.LONG_SCOREBOARD) > 0.01, \
            f"{stage} must show Long Scoreboard stalls"
    # Stage 1 shows the highest LG-Throttle share of all stages (82.7% in
    # the paper), and a worse stall ratio than the tensor GEMM stages.
    lg = {
        s: aggs[s].stalls.fraction(StallReason.LG_THROTTLE) for s in aggs
    }
    assert lg["Stage 1"] == max(lg.values())
    assert (
        aggs["Stage 1"].stall_cycles_per_issued
        > aggs["Stage 2"].stall_cycles_per_issued
    )
