"""Table XIV: FHE workload performance (Boot, HELR, ResNet-20).

Prices the workloads at the Table XIII parameter sets at both of the
paper's batch sizes (BS=1 and BS=16), printing every published
comparison row (TensorFHE, 100x, [47], GME).

The headline rows are *recorded*: the functional bootstrap runs under
:mod:`repro.trace` at proxy ring scale, the recording lowers to a PE
kernel DAG at the full ring, and the DAG is priced on the
dependency-aware scheduler. The hand-counted schedules stay as the
cross-check oracle — this test asserts the two pricings agree:

* Boot: recorded within 10% of the hand-counted static pricing.
* HELR / ResNet: recorded within 10% of the hand count priced with the
  *same* trace-derived hoisting factor. Against the pre-trace static
  pricing they sit ~15-20% higher because the derived per-parameter-set
  factor (~0.50 at dnum=3) exceeds the hand-tuned 0.35 — see DESIGN.md
  §10 for the accounting; the looser bound below pins that deviation.
"""

from repro.analysis import format_table
from repro.baselines.published import TABLE_XIV_WORKLOADS
from repro.ckks import ParameterSets
from repro.core import OperationScheduler
from repro.workloads import (
    simulate_bootstrap,
    simulate_helr_iteration,
    simulate_recorded_bootstrap,
    simulate_recorded_helr_iteration,
    simulate_recorded_resnet20,
    simulate_resnet20,
)


def measure():
    boot_sched = OperationScheduler(ParameterSets.boot())
    nn_sched = OperationScheduler(ParameterSets.resnet())
    helr = ParameterSets.helr()
    out = {}
    for bs in (1, 16):
        out[bs] = {
            "boot_ms": simulate_recorded_bootstrap(
                scheduler=boot_sched, batch=bs
            ).amortized_ms,
            "helr_ms": simulate_recorded_helr_iteration(
                helr, scheduler=nn_sched, batch=bs
            ).amortized_ms,
            "resnet_s": simulate_recorded_resnet20(
                scheduler=nn_sched, batch=bs
            ).amortized_ms / 1e3,
            # Hand-counted oracles for the agreement asserts.
            "hand_static_boot_ms": simulate_bootstrap(
                scheduler=boot_sched, batch=bs, hoisting="static"
            ).amortized_ms,
            "hand_static_helr_ms": simulate_helr_iteration(
                helr, scheduler=nn_sched, batch=bs, hoisting="static"
            ).amortized_ms,
            "hand_static_resnet_s": simulate_resnet20(
                scheduler=nn_sched, batch=bs, hoisting="static"
            ).amortized_ms / 1e3,
            "hand_helr_ms": simulate_helr_iteration(
                helr, scheduler=nn_sched, batch=bs
            ).amortized_ms,
            "hand_resnet_s": simulate_resnet20(
                scheduler=nn_sched, batch=bs
            ).amortized_ms / 1e3,
        }
    return out


def build_table(data):
    rows = []
    for scheme, vals in TABLE_XIV_WORKLOADS.items():
        rows.append([
            f"{scheme} (paper)",
            vals["boot_ms"], vals["helr_ms"], vals["resnet_s"],
            vals["batch"],
        ])
    for bs in (1, 16):
        rows.append([
            f"This repro BS={bs} (recorded)",
            round(data[bs]["boot_ms"], 1),
            round(data[bs]["helr_ms"], 1),
            round(data[bs]["resnet_s"], 2),
            bs,
        ])
        rows.append([
            f"This repro BS={bs} (hand)",
            round(data[bs]["hand_static_boot_ms"], 1),
            round(data[bs]["hand_helr_ms"], 1),
            round(data[bs]["hand_resnet_s"], 2),
            bs,
        ])
    return format_table(
        ["scheme", "Boot (ms)", "HELR (ms/it)", "ResNet (s)", "BS"],
        rows,
        title="Table XIV — FHE workload performance (amortized)",
        col_width=14,
    )


def test_table14_workloads(benchmark, record_table):
    data = benchmark(measure)
    record_table("table14_workloads", build_table(data))

    pub = TABLE_XIV_WORKLOADS
    ours = data[1]
    # Beats 100x on V100 (paper: 328 ms boot, 775 ms/it HELR at BS=1).
    assert ours["boot_ms"] < pub["100x (V100)"]["boot_ms"]
    assert ours["helr_ms"] < pub["100x (V100)"]["helr_ms"]
    # Beats the GME software baseline on MI100.
    assert ours["boot_ms"] < pub["GME-Baseline (MI100)"]["boot_ms"]
    assert ours["resnet_s"] < pub["GME-Baseline (MI100)"]["resnet_s"]
    # But not the GME modified-hardware accelerator (paper concedes this).
    assert ours["resnet_s"] > pub["GME (modified MI100)"]["resnet_s"]
    # Batching improves amortized time.
    assert data[16]["boot_ms"] <= data[1]["boot_ms"]
    # Within ~3.5x of the paper's own WarpDrive rows.
    paper_bs1 = pub["WarpDrive BS=1 (A100-PCIE-80G)"]
    for key in ("boot_ms", "helr_ms", "resnet_s"):
        ratio = ours[key] / paper_bs1[key]
        assert 0.2 < ratio < 3.5, f"{key}: x{ratio:.2f} of paper"

    # Recorded-vs-hand agreement (the trace layer's acceptance bar).
    for bs in (1, 16):
        d = data[bs]
        boot_ratio = d["boot_ms"] / d["hand_static_boot_ms"]
        assert 0.90 < boot_ratio < 1.10, (
            f"BS={bs} recorded boot x{boot_ratio:.3f} of hand static"
        )
        # Same hoisting model on both sides: within 10%.
        for rec_key, hand_key in (("helr_ms", "hand_helr_ms"),
                                  ("resnet_s", "hand_resnet_s")):
            ratio = d[rec_key] / d[hand_key]
            assert 0.90 < ratio < 1.10, (
                f"BS={bs} recorded {rec_key} x{ratio:.3f} of hand derived"
            )
        # Against the pre-trace static pricing the derived hoisting
        # factor shows up as a bounded, documented excess (DESIGN.md §10).
        for rec_key, hand_key in (("helr_ms", "hand_static_helr_ms"),
                                  ("resnet_s", "hand_static_resnet_s")):
            ratio = d[rec_key] / d[hand_key]
            assert 1.00 < ratio < 1.35, (
                f"BS={bs} recorded {rec_key} x{ratio:.3f} of hand static"
            )
