"""Table XIV: FHE workload performance (Boot, HELR, ResNet-20).

Prices the full workload schedules at the Table XIII parameter sets, at
both the paper's batch sizes (BS=1 and BS=16), printing every published
comparison row (TensorFHE, 100x, [47], GME). Shape checks: WarpDrive's
BS=1 runs beat 100x and the GME software baseline, and batching helps.
"""

from repro.analysis import format_table
from repro.baselines.published import TABLE_XIV_WORKLOADS
from repro.ckks import ParameterSets
from repro.core import OperationScheduler
from repro.workloads import (
    simulate_bootstrap,
    simulate_helr_iteration,
    simulate_resnet20,
)


def measure():
    boot_sched = OperationScheduler(ParameterSets.boot())
    nn_sched = OperationScheduler(ParameterSets.resnet())
    out = {}
    for bs in (1, 16):
        out[bs] = {
            "boot_ms": simulate_bootstrap(
                scheduler=boot_sched, batch=bs
            ).amortized_ms,
            "helr_ms": simulate_helr_iteration(
                ParameterSets.helr(), scheduler=nn_sched, batch=bs
            ).amortized_ms,
            "resnet_s": simulate_resnet20(
                scheduler=nn_sched, batch=bs
            ).amortized_ms / 1e3,
        }
    return out


def build_table(data):
    rows = []
    for scheme, vals in TABLE_XIV_WORKLOADS.items():
        rows.append([
            f"{scheme} (paper)",
            vals["boot_ms"], vals["helr_ms"], vals["resnet_s"],
            vals["batch"],
        ])
    for bs in (1, 16):
        rows.append([
            f"This repro BS={bs} (sim)",
            round(data[bs]["boot_ms"], 1),
            round(data[bs]["helr_ms"], 1),
            round(data[bs]["resnet_s"], 2),
            bs,
        ])
    return format_table(
        ["scheme", "Boot (ms)", "HELR (ms/it)", "ResNet (s)", "BS"],
        rows,
        title="Table XIV — FHE workload performance (amortized)",
        col_width=14,
    )


def test_table14_workloads(benchmark, record_table):
    data = benchmark(measure)
    record_table("table14_workloads", build_table(data))

    pub = TABLE_XIV_WORKLOADS
    ours = data[1]
    # Beats 100x on V100 (paper: 328 ms boot, 775 ms/it HELR at BS=1).
    assert ours["boot_ms"] < pub["100x (V100)"]["boot_ms"]
    assert ours["helr_ms"] < pub["100x (V100)"]["helr_ms"]
    # Beats the GME software baseline on MI100.
    assert ours["boot_ms"] < pub["GME-Baseline (MI100)"]["boot_ms"]
    assert ours["resnet_s"] < pub["GME-Baseline (MI100)"]["resnet_s"]
    # But not the GME modified-hardware accelerator (paper concedes this).
    assert ours["resnet_s"] > pub["GME (modified MI100)"]["resnet_s"]
    # Batching improves amortized time.
    assert data[16]["boot_ms"] <= data[1]["boot_ms"]
    # Within ~3.5x of the paper's own WarpDrive rows.
    paper_bs1 = pub["WarpDrive BS=1 (A100-PCIE-80G)"]
    for key in ("boot_ms", "helr_ms", "resnet_s"):
        ratio = ours[key] / paper_bs1[key]
        assert 0.2 < ratio < 3.5, f"{key}: x{ratio:.2f} of paper"
