"""Design-choice ablations called out in DESIGN.md (§IV-A-4 and §IV-A-2).

1. **Karatsuba limb products** — 9 instead of 16 uint8 GEMMs but 5 extra
   additions and 2 bits of word length: the paper measured no net win and
   rejected it; we verify the trade-off is indeed flat-to-negative.
2. **Decomposition depth** — 2 levels beats 1 (SMEM fit + 8x fewer GEMM
   muls) and 3 (tiny GEMMs underuse tensor cores, CUDA load grows).
3. **Montgomery vs Barrett in the NTT** — the ~10% instruction saving.
"""

from repro.analysis import format_table
from repro.core import WarpDriveNtt, costs
from repro.ntt import build_plan
from repro.ntt.decompose import NttPlan

N = 2**16
BATCH = 1024


def measure_karatsuba():
    plain = WarpDriveNtt(N, variant="wd-tensor")
    kara = WarpDriveNtt(N, variant="wd-tensor", use_karatsuba=True)
    return {
        "schoolbook (16 GEMMs)": plain.throughput_kops(BATCH),
        "karatsuba (9 GEMMs)": kara.throughput_kops(BATCH),
    }


def measure_depth():
    """Throughput with forced 1/2/3-level plans (wd-tensor)."""
    plans = {
        "1-level (256x256)": NttPlan(
            N, left=NttPlan(256), right=NttPlan(256)
        ),
        "2-level (16^4), paper's": build_plan(N),
        "3-level (4^8)": build_plan(N, max_leaf=4),
    }
    out = {}
    for label, plan in plans.items():
        counts = costs.plan_work_counts(plan)
        out[label] = {
            "ew_mul": counts.ew_mul,
            "matrix_dim": max(plan.leaf_sizes()),
            "support_ops": counts.support_ops(include_bit_ops=True),
        }
    return out


def build_tables(kara, depth):
    t1 = format_table(
        ["limb scheme", "KOPS"],
        [[k, round(v)] for k, v in kara.items()],
        title=f"Ablation 1 — Karatsuba limb GEMMs (N=2^16, batch {BATCH}); "
              "paper: no significant improvement, rejected",
    )
    t2 = format_table(
        ["decomposition", "EW-Mul", "max leaf", "CUDA support ops"],
        [[k, v["ew_mul"], v["matrix_dim"], v["support_ops"]]
         for k, v in depth.items()],
        title="Ablation 2 — decomposition depth trade-off (per NTT)",
    )
    t3 = format_table(
        ["reduction", "INT32 ops/modmul"],
        [["Montgomery (NTT)", costs.MONTGOMERY_MULMOD_OPS],
         ["Barrett (elsewhere)", costs.BARRETT_MULMOD_OPS]],
        title="Ablation 3 — modular reduction choice (§IV-A-4: Montgomery "
              "~10% cheaper, used in NTTs)",
    )
    return "\n\n".join([t1, t2, t3])


def test_ablations(benchmark, record_table):
    kara = benchmark(measure_karatsuba)
    depth = measure_depth()
    record_table("ablations", build_tables(kara, depth))

    # 1. Karatsuba brings no significant win (paper: rejected). Allow a
    # small swing either way but no >10% improvement.
    gain = kara["karatsuba (9 GEMMs)"] / kara["schoolbook (16 GEMMs)"] - 1
    assert gain < 0.10, "Karatsuba should not be a clear win"

    # 2. Depth trade-off: 2 levels cut EW-Mul 8x vs 1 level; 3 levels cut
    # only 2x more while leaf GEMMs shrink to 4 (below the tensor tile)
    # and the CUDA support load grows.
    one = depth["1-level (256x256)"]
    two = depth["2-level (16^4), paper's"]
    three = depth["3-level (4^8)"]
    assert one["ew_mul"] // two["ew_mul"] == 8
    assert three["matrix_dim"] < 16, "3-level leaves underfill the tile"
    assert three["support_ops"] > two["support_ops"]

    # 3. Montgomery saves ~10-20% of the Barrett instruction count.
    saving = 1 - costs.MONTGOMERY_MULMOD_OPS / costs.BARRETT_MULMOD_OPS
    assert 0.05 < saving < 0.25
