"""§III-C: the memory cost of ciphertext batching vs intra-ciphertext
parallelism.

The paper motivates PE kernels by noting that (a) a single ciphertext
already expands to ~1 GB of working state during HMULT at large
parameters, and (b) TensorFHE-style batching multiplies that by the batch
size, "exacerbating the memory resource constraints". This benchmark
quantifies both with the S_max model and checks the claims.
"""

from repro.analysis import format_table
from repro.ckks import ParameterSets
from repro.core import max_working_set_bytes

SETS = ["SET-C", "SET-D", "SET-E"]


def measure():
    data = {}
    for s in SETS:
        params = ParameterSets.by_name(s)
        ct_mb = params.ciphertext_bytes() / 1024**2
        ws_1 = max_working_set_bytes(params, batch_size=1) / 1024**2
        ws_128 = max_working_set_bytes(params, batch_size=128) / 1024**2
        data[s] = {
            "ciphertext_mb": ct_mb,
            "working_set_bs1_mb": ws_1,
            "working_set_bs128_gb": ws_128 / 1024,
        }
    return data


def build_table(data):
    rows = []
    for s in SETS:
        d = data[s]
        rows.append([
            s,
            round(d["ciphertext_mb"], 1),
            round(d["working_set_bs1_mb"], 0),
            round(d["working_set_bs128_gb"], 1),
        ])
    return format_table(
        ["set", "ct (MB)", "HMULT working set BS=1 (MB)",
         "BS=128 (GB)"],
        rows,
        title="Memory footprint — single ciphertext vs batched (S_max "
              "model, §III-C)",
        col_width=26,
    )


def test_memory_footprint(benchmark, record_table):
    data = benchmark(measure)
    record_table("memory_footprint", build_table(data))

    # §III-C: a single large-parameter ciphertext expands toward ~1 GB
    # of working state during key-switching.
    assert data["SET-E"]["working_set_bs1_mb"] > 500
    # Batching at TensorFHE's scale exceeds even an 80 GB A100.
    assert data["SET-E"]["working_set_bs128_gb"] > 80
    # WarpDrive's BS=1 working set fits comfortably.
    for s in SETS:
        assert data[s]["working_set_bs1_mb"] < 80 * 1024
