"""NTT scaling study: throughput vs ring size and batch depth.

Not a single paper table, but the underlying scaling behaviour every
table rides on: WarpDrive's single-kernel NTT amortizes launch overhead
with batch depth and decays ~linearly in N once memory-bound.
"""

from repro.analysis import format_table
from repro.core import WarpDriveNtt

SIZES = [2**12, 2**13, 2**14, 2**15, 2**16]
BATCHES = [1, 64, 1024]


def measure():
    data = {}
    for n in SIZES:
        engine = WarpDriveNtt(n)
        data[n] = {b: engine.throughput_kops(b) for b in BATCHES}
    return data


def build_table(data):
    rows = []
    for n in SIZES:
        rows.append(
            [f"N=2^{n.bit_length() - 1}"]
            + [round(data[n][b]) for b in BATCHES]
        )
    return format_table(
        ["ring size"] + [f"batch {b}" for b in BATCHES], rows,
        title="WarpDrive NTT throughput scaling (KOPS, wd-fuse)",
    )


def test_ntt_scaling(benchmark, record_table):
    data = benchmark(measure)
    record_table("ntt_scaling", build_table(data))

    for n in SIZES:
        # Batching always helps (launch amortization + machine fill)...
        assert data[n][1024] > data[n][64] >= data[n][1]
    for b in BATCHES:
        # ...and throughput decays monotonically with ring size.
        series = [data[n][b] for n in SIZES]
        assert series == sorted(series, reverse=True)
    # Per-coefficient cost is roughly flat at scale: KOPS ratio between
    # adjacent sizes stays within [1.5, 8] (N doubles plus log factor).
    for a, b2 in zip(SIZES, SIZES[1:]):
        ratio = data[a][1024] / data[b2][1024]
        assert 1.5 < ratio < 8
