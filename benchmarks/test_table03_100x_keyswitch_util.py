"""Table III: utilization of the 100x KeySwitch kernels (§III-C).

Profiles the kernel-fused (KF) 100x KeySwitch at the paper's two
configurations and checks the motivating observations: no kernel class
except InnerProduct exceeds ~61% utilization, and INTT sits lowest.
"""

import pytest

from repro.analysis import format_table
from repro.baselines import HundredXOps
from repro.baselines.published import TABLE_III_100X_UTILIZATION
from repro.ckks import CkksParams
from repro.gpusim import aggregate

CONFIGS = {
    "N=2^15": CkksParams(n=2**15, max_level=24, num_special=1, dnum=25,
                         name="t3-a"),
    "N=2^16": CkksParams(n=2**16, max_level=34, num_special=1, dnum=35,
                         name="t3-b"),
}

KINDS = {"ntt": "NTT", "modup": "ModUP", "intt": "INTT",
         "moddown": "ModDown", "inner_product": "InProd"}


def profile_kernel_classes(params):
    """Utilization per kernel class of the 100x_opt KeySwitch."""
    ops = HundredXOps(params, optimized=True)
    result = ops.simulate("keyswitch")
    groups = {}
    for prof in result.profiles:
        name = prof.spec.name
        if "intt" in name:
            kind = "INTT"
        elif "ntt" in name:
            kind = "NTT"
        elif "modup" in name:
            kind = "ModUP"
        elif "moddown" in name:
            kind = "ModDown"
        elif "mac" in name or "inner" in name:
            kind = "InProd"
        else:
            continue
        groups.setdefault(kind, []).append(prof)
    return {kind: aggregate(profs) for kind, profs in groups.items()}


def build_table():
    rows = []
    all_profiles = {}
    for label, params in CONFIGS.items():
        profiles = profile_kernel_classes(params)
        all_profiles[label] = profiles
        published = TABLE_III_100X_UTILIZATION[label]
        kinds = ["NTT", "ModUP", "INTT", "ModDown", "InProd"]
        rows.append([f"{label} memory % (sim)"]
                    + [round(profiles[k].memory_utilization, 1)
                       for k in kinds])
        rows.append(["  paper"]
                    + [published["memory_util"][k] for k in kinds])
        rows.append([f"{label} compute % (sim)"]
                    + [round(profiles[k].compute_utilization, 1)
                       for k in kinds])
        rows.append(["  paper"]
                    + [published["compute_util"][k] for k in kinds])
    table = format_table(
        ["config / metric", "NTT", "ModUP", "INTT", "ModDown", "InProd"],
        rows,
        title="Table III — 100x KeySwitch kernel utilization",
    )
    return table, all_profiles


def test_table03_keyswitch_utilization(benchmark, record_table):
    table, all_profiles = benchmark(build_table)
    record_table("table03_100x_keyswitch_util", table)

    for label, profiles in all_profiles.items():
        # §III-C: InnerProduct saturates memory; everything else is
        # underutilized.
        inprod_mem = profiles["InProd"].memory_utilization
        for kind in ("NTT", "ModUP", "ModDown"):
            assert profiles[kind].compute_utilization < 61, (
                f"{label} {kind}: paper reports <61% compute utilization"
            )
        assert inprod_mem >= max(
            p.memory_utilization for p in profiles.values()
        ) - 0.1, "InnerProduct must be among the most memory-saturated"
