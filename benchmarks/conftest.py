"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures. The
rendered text goes to stdout (visible with ``pytest -s``) and is also
persisted under ``benchmarks/results/`` so EXPERIMENTS.md can reference
the exact artifacts.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record_table():
    """Return a writer that persists a rendered table and echoes it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _record
