"""Figure 5: scheduler-cycle breakdown, WD-Tensor vs TensorFHE NTT.

The paper's headline memory-optimization numbers: 86% fewer cycles, 73%
fewer instructions, Stall LG Throttle nearly eliminated, Stall Long
Scoreboard cut by 98%, memory-related share down from ~70% to ~21%.
"""

from repro.analysis import format_table
from repro.baselines import TensorFheNtt
from repro.core import WarpDriveNtt
from repro.gpusim import StallReason, aggregate

N = 2**16
BATCH = 1024


def measure():
    tf_profiles = [
        e.profile for e in TensorFheNtt(N).simulate(BATCH).entries
    ]
    wd_profiles = [
        e.profile
        for e in WarpDriveNtt(N, variant="wd-tensor").simulate(BATCH).entries
    ]
    return aggregate(tf_profiles), aggregate(wd_profiles)


def build_table(tf, wd):
    def row(label, getter):
        t, w = getter(tf), getter(wd)
        reduction = 100 * (1 - w / t) if t else 0.0
        return [label, f"{t:.3g}", f"{w:.3g}", f"{reduction:.1f}%"]

    rows = [
        row("total cycles", lambda a: a.total_cycles),
        row("issued instructions ('Selected')",
            lambda a: a.issued_instructions),
        row("stall cycles (all reasons)", lambda a: a.stalls.total),
        row("  LG Throttle",
            lambda a: a.stalls.cycles.get(StallReason.LG_THROTTLE, 0.0)),
        row("  Long Scoreboard",
            lambda a: a.stalls.cycles.get(
                StallReason.LONG_SCOREBOARD, 0.0)),
        ["memory-related stall share",
         f"{100 * tf.memory_stall_fraction:.1f}%",
         f"{100 * wd.memory_stall_fraction:.1f}%", "-"],
    ]
    return format_table(
        ["metric", "TensorFHE", "WD-Tensor", "reduction"],
        rows,
        title=f"Fig. 5 — scheduler cycles breakdown (N=2^16, "
              f"batch={BATCH}); paper: -86% cycles, -73% instructions",
        col_width=14,
    )


def test_fig05_stall_breakdown(benchmark, record_table):
    tf, wd = benchmark(measure)
    record_table("fig05_stall_breakdown", build_table(tf, wd))

    # Cycle reduction (paper: 86%).
    cycle_cut = 1 - wd.total_cycles / tf.total_cycles
    assert cycle_cut > 0.70, f"cycle reduction only {cycle_cut:.0%}"
    # Instruction reduction (paper: 73%).
    instr_cut = 1 - wd.issued_instructions / tf.issued_instructions
    assert instr_cut > 0.4, f"instruction reduction only {instr_cut:.0%}"
    # LG Throttle almost eliminated.
    tf_lg = tf.stalls.cycles.get(StallReason.LG_THROTTLE, 0.0)
    wd_lg = wd.stalls.cycles.get(StallReason.LG_THROTTLE, 0.0)
    assert wd_lg < 0.1 * tf_lg
    # Long Scoreboard slashed (paper: -98%).
    tf_lsb = tf.stalls.cycles.get(StallReason.LONG_SCOREBOARD, 0.0)
    wd_lsb = wd.stalls.cycles.get(StallReason.LONG_SCOREBOARD, 0.0)
    assert wd_lsb < 0.15 * tf_lsb
    # Memory-related share drops decisively (paper: ~70% -> 21%).
    assert wd.memory_stall_fraction < tf.memory_stall_fraction - 0.2
