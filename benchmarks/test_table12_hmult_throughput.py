"""Table XII: HMULT throughput — CPU vs TensorFHE vs WarpDrive.

WarpDrive's intra-ciphertext parallelism gives high throughput without
TensorFHE's heavy ciphertext batching: measured at pipeline depth 32
(WarpDrive PE) vs 512 (TensorFHE operation batching); conventions
documented in EXPERIMENTS.md.
"""

from repro.analysis import format_table
from repro.baselines import TensorFheOps, cpu_hmult_throughput_kops
from repro.baselines.published import TABLE_XII_HMULT_KOPS
from repro.ckks import ParameterSets
from repro.core import OperationScheduler

SETS = ["SET-A", "SET-B", "SET-C"]
WD_DEPTH = 32
TF_DEPTH = 512


def measure():
    data = {"CPU (sim)": {}, "TensorFHE (sim)": {}, "WarpDrive (sim)": {}}
    for s in SETS:
        params = ParameterSets.by_name(s)
        data["CPU (sim)"][s] = cpu_hmult_throughput_kops(params)
        data["TensorFHE (sim)"][s] = TensorFheOps(
            params
        ).hmult_throughput_kops(batch=TF_DEPTH)
        data["WarpDrive (sim)"][s] = OperationScheduler(
            params
        ).throughput_kops("hmult", batch=WD_DEPTH)
    return data


def build_table(data):
    pub = TABLE_XII_HMULT_KOPS
    rows = []
    for scheme, pub_key in (("CPU (sim)", "CPU Baseline"),
                            ("TensorFHE (sim)", "TensorFHE"),
                            ("WarpDrive (sim)", "WarpDrive")):
        rows.append([scheme] + [round(data[scheme][s], 2) for s in SETS])
        rows.append(["  paper"] + [pub[pub_key][s] for s in SETS])
    rows.append(
        ["Speedup over TensorFHE (sim)"]
        + [f"{data['WarpDrive (sim)'][s] / data['TensorFHE (sim)'][s]:.2f}x"
           for s in SETS]
    )
    rows.append(["  paper"] + ["3.46x", "1.73x", "1.37x"])
    rows.append(
        ["Speedup over CPU (sim)"]
        + [f"{data['WarpDrive (sim)'][s] / data['CPU (sim)'][s]:.0f}x"
           for s in SETS]
    )
    rows.append(["  paper"] + ["726x", "596x", "260x"])
    return format_table(
        ["scheme"] + SETS, rows,
        title=f"Table XII — HMULT throughput, KOPS "
              f"(WD depth {WD_DEPTH}, TF batch {TF_DEPTH})",
        col_width=14,
    )


def test_table12_hmult_throughput(benchmark, record_table):
    data = benchmark(measure)
    record_table("table12_hmult_throughput", build_table(data))

    for s in SETS:
        wd = data["WarpDrive (sim)"][s]
        tf = data["TensorFHE (sim)"][s]
        cpu = data["CPU (sim)"][s]
        # WarpDrive beats TensorFHE despite the 16x smaller batch.
        assert wd > tf, f"{s}: WarpDrive must beat TensorFHE"
        # And the CPU by orders of magnitude (paper: 260-726x).
        assert wd / cpu > 100, f"{s}: CPU speedup only {wd / cpu:.0f}x"
    # The WD advantage shrinks with the set size (the paper's trend:
    # 3.46x -> 1.37x as batching catches up on big rings).
    ratios = [
        data["WarpDrive (sim)"][s] / data["TensorFHE (sim)"][s]
        for s in SETS
    ]
    assert ratios[0] > ratios[-1] * 0.5
