"""Figure 4: PE kernels vs KF kernels on ModUp/ModDown.

The kernel-fused (KF) design still processes one polynomial per launch;
the parallelism-enhanced (PE) design adds the polynomial dimension to the
grid. This benchmark isolates exactly the ModUp/ModDown stages of Fig. 4
and shows the PE form using more of the machine per launch and finishing
the multi-polynomial batch faster.
"""

from repro.analysis import format_table
from repro.ckks import ParameterSets
from repro.core import kernels as K
from repro.gpusim import A100_PCIE_80G, run_serial, simulate_kernel

PARAMS = ParameterSets.set_d()
DEV = A100_PCIE_80G


def measure():
    n = PARAMS.n
    lvl = PARAMS.max_level + 1
    special = PARAMS.num_special
    dnum = PARAMS.dnum
    alpha = -(-lvl // dnum)
    ext = lvl + special

    # KF: one ModUp launch per digit, one ModDown launch per polynomial.
    kf_modup = [
        K.modup_kernel(f"kf.modup[{d}]", n, alpha, ext, polys=1)
        for d in range(dnum)
    ]
    kf_moddown = [
        K.moddown_kernel(f"kf.moddown[{p}]", n, lvl, special, polys=1)
        for p in range(2)
    ]
    # PE: the whole digit set / polynomial pair in one launch each.
    pe_modup = [K.modup_kernel("pe.modup", n, alpha, ext, polys=dnum)]
    pe_moddown = [
        K.moddown_kernel("pe.moddown", n, lvl, special, polys=2)
    ]

    return {
        "KF ModUp": run_serial(kf_modup, DEV),
        "PE ModUp": run_serial(pe_modup, DEV),
        "KF ModDown": run_serial(kf_moddown, DEV),
        "PE ModDown": run_serial(pe_moddown, DEV),
    }


def build_table(results):
    rows = []
    for name, res in results.items():
        blocks = sum(e.profile.spec.blocks for e in res.entries)
        rows.append([
            name, res.kernel_count, round(res.elapsed_us, 1), blocks,
        ])
    return format_table(
        ["design", "kernels", "elapsed us", "total blocks"], rows,
        title="Fig. 4 — PE vs KF kernels on KeySwitch ModUp/ModDown "
              "(SET-D)",
    )


def test_fig04_pe_vs_kf(benchmark, record_table):
    results = benchmark(measure)
    record_table("fig04_pe_vs_kf", build_table(results))

    # PE needs one launch where KF needs one per polynomial/digit...
    assert results["PE ModUp"].kernel_count == 1
    assert results["KF ModUp"].kernel_count == PARAMS.dnum
    # ...and finishes the same total work sooner (launch overhead and
    # better machine fill).
    assert results["PE ModUp"].elapsed_us < results["KF ModUp"].elapsed_us
    assert (
        results["PE ModDown"].elapsed_us
        < results["KF ModDown"].elapsed_us
    )
