"""Microbenchmark: seed per-prime loop path vs the batched RNS engine.

The seed implementation of ``RnsPoly`` iterated ``for i, q in
enumerate(self.moduli)`` in every arithmetic and domain-conversion hot
path, so throughput scaled with Python interpreter overhead instead of
NumPy throughput. This bench replays that loop path (preserved here
verbatim) against the batched ``(num_primes, N)`` engine for the op mix
that dominates homomorphic workloads: HADD/HSUB-style element-wise ops,
eval-domain Hadamard products, and forward/inverse negacyclic NTTs.

Run::

    PYTHONPATH=src python benchmarks/bench_poly.py            # full run
    PYTHONPATH=src python benchmarks/bench_poly.py --reps 1   # CI smoke

Results land in ``BENCH_poly.json`` (see ``--out``); later PRs regress
against the committed numbers.
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from repro.ckks.poly import get_reducer
from repro.ntt import (
    batched_negacyclic_intt,
    batched_negacyclic_ntt,
    get_tables,
    get_twiddle_stack,
    negacyclic_intt,
    negacyclic_ntt,
)
from repro.numtheory import BatchBarrettReducer, find_ntt_primes

CONFIGS = [(2048, 4), (2048, 8), (4096, 4), (4096, 8)]
HEADLINE = (4096, 8)


# -- the seed loop path, preserved for comparison ---------------------------

def loop_add(a, b, moduli):
    out = np.empty_like(a)
    for i, q in enumerate(moduli):
        out[i] = get_reducer(q).add_vec(a[i], b[i])
    return out


def loop_sub(a, b, moduli):
    out = np.empty_like(a)
    for i, q in enumerate(moduli):
        out[i] = get_reducer(q).sub_vec(a[i], b[i])
    return out


def loop_mul(a, b, moduli):
    out = np.empty_like(a)
    for i, q in enumerate(moduli):
        out[i] = get_reducer(q).mul_vec(a[i], b[i])
    return out


def loop_ntt(data, moduli, n):
    return np.stack([
        negacyclic_ntt(data[i], get_tables(q, n))
        for i, q in enumerate(moduli)
    ])


def loop_intt(data, moduli, n):
    return np.stack([
        negacyclic_intt(data[i], get_tables(q, n))
        for i, q in enumerate(moduli)
    ])


# -- measurement ------------------------------------------------------------

def best_of(fn, reps):
    """Best-of-``reps`` wall time in seconds (one untimed warmup)."""
    fn()
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_config(n, num_primes, reps, rng):
    moduli = tuple(find_ntt_primes(num_primes, 28, n))
    a = np.stack([rng.integers(0, q, size=n, dtype=np.uint64)
                  for q in moduli])
    b = np.stack([rng.integers(0, q, size=n, dtype=np.uint64)
                  for q in moduli])
    stack = get_twiddle_stack(moduli, n)
    batch = BatchBarrettReducer(moduli)

    ops = {
        "add": (lambda: loop_add(a, b, moduli),
                lambda: batch.add_mat(a, b)),
        "sub": (lambda: loop_sub(a, b, moduli),
                lambda: batch.sub_mat(a, b)),
        "mul": (lambda: loop_mul(a, b, moduli),
                lambda: batch.mul_mat(a, b)),
        "ntt": (lambda: loop_ntt(a, moduli, n),
                lambda: batched_negacyclic_ntt(a, stack)),
        "intt": (lambda: loop_intt(a, moduli, n),
                 lambda: batched_negacyclic_intt(a, stack)),
    }

    result = {"n": n, "num_primes": num_primes, "ops": {}}
    total_loop = total_batched = 0.0
    for name, (loop_fn, batched_fn) in ops.items():
        if not np.array_equal(loop_fn(), batched_fn()):
            raise AssertionError(
                f"batched {name} disagrees with the loop path at "
                f"N={n}, L={num_primes}"
            )
        t_loop = best_of(loop_fn, reps)
        t_batched = best_of(batched_fn, reps)
        total_loop += t_loop
        total_batched += t_batched
        result["ops"][name] = {
            "loop_us": t_loop * 1e6,
            "batched_us": t_batched * 1e6,
            "speedup": t_loop / t_batched,
        }
    result["total_loop_us"] = total_loop * 1e6
    result["total_batched_us"] = total_batched * 1e6
    result["speedup"] = total_loop / total_batched
    return result


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=25,
                        help="timed repetitions per op (best-of)")
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(__file__), os.pardir,
                             "BENCH_poly.json"),
        help="output JSON path",
    )
    args = parser.parse_args(argv)
    if args.reps < 1:
        parser.error(f"--reps must be >= 1, got {args.reps}")

    rng = np.random.default_rng(0)
    report = {
        "bench": "bench_poly",
        "description": "seed per-prime loop path vs batched RNS engine",
        "reps": args.reps,
        "configs": [],
    }
    for n, num_primes in CONFIGS:
        cfg = bench_config(n, num_primes, args.reps, rng)
        report["configs"].append(cfg)
        print(f"N={n:5d} L={num_primes}:  "
              f"loop {cfg['total_loop_us']:9.1f} us  "
              f"batched {cfg['total_batched_us']:9.1f} us  "
              f"speedup {cfg['speedup']:.2f}x")
        for name, op in cfg["ops"].items():
            print(f"    {name:4s}  {op['loop_us']:9.1f} -> "
                  f"{op['batched_us']:9.1f} us  ({op['speedup']:.2f}x)")

    headline = next(
        c for c in report["configs"]
        if (c["n"], c["num_primes"]) == HEADLINE
    )
    report["headline_speedup"] = headline["speedup"]
    print(f"\nheadline (N={HEADLINE[0]}, L={HEADLINE[1]}): "
          f"{headline['speedup']:.2f}x")

    out = os.path.abspath(args.out)
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}")
    return report


if __name__ == "__main__":
    main()
