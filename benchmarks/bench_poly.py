"""Microbenchmark: seed per-prime loop path vs the batched RNS engine.

The seed implementation of ``RnsPoly`` iterated ``for i, q in
enumerate(self.moduli)`` in every arithmetic and domain-conversion hot
path, so throughput scaled with Python interpreter overhead instead of
NumPy throughput. This bench replays that loop path (preserved here
verbatim) against the batched ``(num_primes, N)`` engine for the op mix
that dominates homomorphic workloads: HADD/HSUB-style element-wise ops,
eval-domain Hadamard products, and forward/inverse negacyclic NTTs.

A second section times the hot kernels **per compute backend** (numpy
reference, numba when importable, cupy when importable — see
``repro.backend``): stacked NTT/INTT, the key-switch ``wide_dot`` inner
product, and a full ``keyswitch`` call, with every accelerated backend's
output asserted bit-identical to numpy before it is timed.

Run::

    PYTHONPATH=src python benchmarks/bench_poly.py            # full run
    PYTHONPATH=src python benchmarks/bench_poly.py --reps 1   # CI smoke

Results land in ``BENCH_poly.json`` (see ``--out``); later PRs regress
against the committed numbers.
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

from repro.backend import (
    available_backends,
    backend_name,
    resolve_backend,
    use_backend,
)
from repro.ckks import CkksContext, ParameterSets
from repro.ckks.keyswitch import keyswitch
from repro.ckks.ks_common import wide_dot
from repro.ckks.poly import RnsPoly, get_reducer
from repro.ntt import (
    batched_negacyclic_intt,
    batched_negacyclic_ntt,
    get_tables,
    get_twiddle_stack,
    negacyclic_intt,
    negacyclic_ntt,
)
from repro.ntt.stacked import (
    get_shoup_stack,
    stacked_negacyclic_intt,
    stacked_negacyclic_ntt,
)
from repro.numtheory import BatchBarrettReducer, find_ntt_primes

# Small configs lead: they are where the batched path once *lost* to the
# loop path (masked-ufunc overhead dominated at tiny matrices) — the
# regression this bench pins as fixed.
CONFIGS = [(256, 2), (256, 4), (1024, 4), (2048, 4), (2048, 8),
           (4096, 4), (4096, 8)]
HEADLINE = (4096, 8)


# -- the seed loop path, preserved for comparison ---------------------------

def loop_add(a, b, moduli):
    out = np.empty_like(a)
    for i, q in enumerate(moduli):
        out[i] = get_reducer(q).add_vec(a[i], b[i])
    return out


def loop_sub(a, b, moduli):
    out = np.empty_like(a)
    for i, q in enumerate(moduli):
        out[i] = get_reducer(q).sub_vec(a[i], b[i])
    return out


def loop_mul(a, b, moduli):
    out = np.empty_like(a)
    for i, q in enumerate(moduli):
        out[i] = get_reducer(q).mul_vec(a[i], b[i])
    return out


def loop_ntt(data, moduli, n):
    return np.stack([
        negacyclic_ntt(data[i], get_tables(q, n))
        for i, q in enumerate(moduli)
    ])


def loop_intt(data, moduli, n):
    return np.stack([
        negacyclic_intt(data[i], get_tables(q, n))
        for i, q in enumerate(moduli)
    ])


# -- measurement ------------------------------------------------------------

def best_of(fn, reps):
    """Best-of-``reps`` wall time in seconds (one untimed warmup)."""
    fn()
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_config(n, num_primes, reps, rng):
    moduli = tuple(find_ntt_primes(num_primes, 28, n))
    a = np.stack([rng.integers(0, q, size=n, dtype=np.uint64)
                  for q in moduli])
    b = np.stack([rng.integers(0, q, size=n, dtype=np.uint64)
                  for q in moduli])
    stack = get_twiddle_stack(moduli, n)
    batch = BatchBarrettReducer(moduli)

    ops = {
        "add": (lambda: loop_add(a, b, moduli),
                lambda: batch.add_mat(a, b)),
        "sub": (lambda: loop_sub(a, b, moduli),
                lambda: batch.sub_mat(a, b)),
        "mul": (lambda: loop_mul(a, b, moduli),
                lambda: batch.mul_mat(a, b)),
        "ntt": (lambda: loop_ntt(a, moduli, n),
                lambda: batched_negacyclic_ntt(a, stack)),
        "intt": (lambda: loop_intt(a, moduli, n),
                 lambda: batched_negacyclic_intt(a, stack)),
    }

    result = {"n": n, "num_primes": num_primes, "ops": {}}
    total_loop = total_batched = 0.0
    for name, (loop_fn, batched_fn) in ops.items():
        if not np.array_equal(loop_fn(), batched_fn()):
            raise AssertionError(
                f"batched {name} disagrees with the loop path at "
                f"N={n}, L={num_primes}"
            )
        t_loop = best_of(loop_fn, reps)
        t_batched = best_of(batched_fn, reps)
        total_loop += t_loop
        total_batched += t_batched
        result["ops"][name] = {
            "loop_us": t_loop * 1e6,
            "batched_us": t_batched * 1e6,
            "speedup": t_loop / t_batched,
        }
    result["total_loop_us"] = total_loop * 1e6
    result["total_batched_us"] = total_batched * 1e6
    result["speedup"] = total_loop / total_batched
    return result


# -- per-backend kernel bench ------------------------------------------------

BACKEND_N = 2048
BACKEND_PRIMES = 8
BACKEND_DIGITS = 4


def bench_backends(reps, rng):
    """Time the backend-dispatched hot kernels under every importable
    backend, asserting bit-exactness against numpy before timing.

    The ``keyswitch`` entry runs the full batched pipeline (INTT, ModUp,
    InnerProduct, ModDown, NTT) on the ``small`` parameter set — the op
    whose kernel breakdown the paper's Figure 9 accounts for.
    """
    moduli = tuple(find_ntt_primes(BACKEND_PRIMES, 28, BACKEND_N))
    stack = get_shoup_stack(moduli, BACKEND_N)
    batch = BatchBarrettReducer(moduli)
    x = np.stack([rng.integers(0, q, size=BACKEND_N, dtype=np.uint64)
                  for q in moduli])
    ext = np.stack([
        np.stack([rng.integers(0, q, size=BACKEND_N, dtype=np.uint64)
                  for _ in range(BACKEND_DIGITS)])
        for q in moduli
    ])
    rows = np.stack([
        np.stack([rng.integers(0, q, size=BACKEND_N, dtype=np.uint64)
                  for _ in range(BACKEND_DIGITS)])
        for q in moduli
    ])

    ctx = CkksContext.create(ParameterSets.small(), seed=7)
    keys = ctx.keygen()
    ev = ctx.evaluator
    d = RnsPoly(
        np.stack([rng.integers(0, q, size=ctx.params.n, dtype=np.uint64)
                  for q in ev.q_moduli]),
        ev.q_moduli, "eval",
    )

    kernels = {
        "ntt": lambda: stacked_negacyclic_ntt(x, stack),
        "intt": lambda: stacked_negacyclic_intt(x, stack),
        "mul": lambda: batch.mul_mat(x, x),
        "wide_dot": lambda: wide_dot(ext, rows, batch),
        "keyswitch": lambda: keyswitch(d, keys.relin, ev.p_moduli),
    }

    reference = {name: fn() for name, fn in kernels.items()}
    section = {
        "n": BACKEND_N,
        "num_primes": BACKEND_PRIMES,
        "digits": BACKEND_DIGITS,
        "available": available_backends(),
        "default": backend_name(),
        "results": {},
    }
    for name, importable in section["available"].items():
        if not importable:
            continue
        backend = resolve_backend(name)
        if backend.name != name:  # constructed but failed self-check
            continue
        entry = {"bit_exact": True, "ops": {}}
        with use_backend(backend):
            for op, fn in kernels.items():
                got = fn()
                want = reference[op]
                if op == "keyswitch":
                    same = (np.array_equal(got[0].data, want[0].data)
                            and np.array_equal(got[1].data, want[1].data))
                else:
                    same = np.array_equal(got, want)
                if not same:
                    raise AssertionError(
                        f"backend {name!r} disagrees with numpy on {op}"
                    )
                t = best_of(fn, reps)
                entry["ops"][op] = {"us": t * 1e6}
        section["results"][name] = entry
    ref = section["results"].get("numpy")
    if ref:
        for name, entry in section["results"].items():
            for op, rec in entry["ops"].items():
                rec["speedup_vs_numpy"] = ref["ops"][op]["us"] / rec["us"]
    return section


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=25,
                        help="timed repetitions per op (best-of)")
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(__file__), os.pardir,
                             "BENCH_poly.json"),
        help="output JSON path",
    )
    args = parser.parse_args(argv)
    if args.reps < 1:
        parser.error(f"--reps must be >= 1, got {args.reps}")

    rng = np.random.default_rng(0)
    report = {
        "bench": "bench_poly",
        "description": "seed per-prime loop path vs batched RNS engine",
        "reps": args.reps,
        "configs": [],
    }
    for n, num_primes in CONFIGS:
        cfg = bench_config(n, num_primes, args.reps, rng)
        report["configs"].append(cfg)
        print(f"N={n:5d} L={num_primes}:  "
              f"loop {cfg['total_loop_us']:9.1f} us  "
              f"batched {cfg['total_batched_us']:9.1f} us  "
              f"speedup {cfg['speedup']:.2f}x")
        for name, op in cfg["ops"].items():
            print(f"    {name:4s}  {op['loop_us']:9.1f} -> "
                  f"{op['batched_us']:9.1f} us  ({op['speedup']:.2f}x)")

    report["backends"] = bench_backends(args.reps, rng)
    print(f"\nbackends (N={BACKEND_N}, L={BACKEND_PRIMES}, "
          f"G={BACKEND_DIGITS}; default={report['backends']['default']}):")
    for name, entry in report["backends"]["results"].items():
        line = "  ".join(
            f"{op} {rec['us']:9.1f} us"
            + (f" ({rec['speedup_vs_numpy']:.2f}x)"
               if name != "numpy" else "")
            for op, rec in entry["ops"].items()
        )
        print(f"  {name:6s} {line}")

    headline = next(
        c for c in report["configs"]
        if (c["n"], c["num_primes"]) == HEADLINE
    )
    report["headline_speedup"] = headline["speedup"]
    print(f"\nheadline (N={HEADLINE[0]}, L={HEADLINE[1]}): "
          f"{headline['speedup']:.2f}x")

    out = os.path.abspath(args.out)
    with open(out, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out}")
    return report


if __name__ == "__main__":
    main()
