"""Figure 1: kernel execution timelines of the TensorFHE NTT.

Renders the serialized 5-stage timeline (upper panel of Fig. 1) and the
naive multi-stream variant, checking the paper's observation that the
full-device GEMM grids serialize even across streams — the motivation for
WarpDrive's single-kernel design.
"""

from repro.baselines import TensorFheNtt
from repro.core import WarpDriveNtt
from repro.gpusim import render_timeline, summarize

N = 2**16
BATCH = 1024


def build_timelines():
    ntt = TensorFheNtt(N)
    serial = ntt.simulate(BATCH, streams=1)
    streamed = ntt.simulate(BATCH, streams=4)
    wd = WarpDriveNtt(N).simulate(BATCH)
    art = "\n\n".join([
        render_timeline(
            serial, title="TensorFHE 5-stage NTT (single stream)"
        ),
        render_timeline(
            streamed,
            title="TensorFHE with 4 streams (grids serialize, §III-A)",
        ),
        render_timeline(
            wd, title="WarpDrive one/dual-kernel NTT (same batch)"
        ),
        "per-kernel detail (single stream):",
        summarize(serial),
    ])
    return art, serial, streamed, wd


def test_fig01_timeline(benchmark, record_table):
    art, serial, streamed, wd = benchmark(build_timelines)
    record_table("fig01_timeline", art)

    # Streams cannot overlap full-device grids.
    assert streamed.elapsed_us > 0.95 * serial.elapsed_us
    # TensorFHE launches 35 kernels; WarpDrive needs at most 2.
    assert serial.kernel_count == 35
    assert wd.kernel_count <= 2
    # And the WarpDrive timeline is roughly an order of magnitude shorter.
    assert serial.elapsed_us / wd.elapsed_us > 5
