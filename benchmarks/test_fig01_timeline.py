"""Figure 1: kernel execution timelines of the TensorFHE NTT.

Renders the serialized 5-stage timeline (upper panel of Fig. 1) and the
naive multi-stream variant, checking the paper's observation that the
full-device GEMM grids serialize even across streams — the motivation for
WarpDrive's single-kernel design.

Also persists Chrome trace-event JSON artifacts (load them in
chrome://tracing or Perfetto): the streamed NTT timeline, and a recorded
SET-C bootstrap scheduled as a dependency DAG — its flow arrows show the
data hazards that constrain the pictured overlap.
"""

import pathlib

from repro.baselines import TensorFheNtt
from repro.ckks import ParameterSets
from repro.core import OperationScheduler, WarpDriveNtt
from repro.gpusim import render_timeline, summarize
from repro.gpusim.timeline import save_chrome_trace
from repro.trace import lower_trace
from repro.workloads import record_bootstrap_trace

N = 2**16
BATCH = 1024
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def build_timelines():
    ntt = TensorFheNtt(N)
    serial = ntt.simulate(BATCH, streams=1)
    streamed = ntt.simulate(BATCH, streams=4)
    wd = WarpDriveNtt(N).simulate(BATCH)
    art = "\n\n".join([
        render_timeline(
            serial, title="TensorFHE 5-stage NTT (single stream)"
        ),
        render_timeline(
            streamed,
            title="TensorFHE with 4 streams (grids serialize, §III-A)",
        ),
        render_timeline(
            wd, title="WarpDrive one/dual-kernel NTT (same batch)"
        ),
        "per-kernel detail (single stream):",
        summarize(serial),
    ])
    return art, serial, streamed, wd


def test_fig01_timeline(benchmark, record_table):
    art, serial, streamed, wd = benchmark(build_timelines)
    record_table("fig01_timeline", art)

    # Chrome trace-event artifacts (satellite of the trace layer).
    RESULTS_DIR.mkdir(exist_ok=True)
    save_chrome_trace(streamed, RESULTS_DIR / "fig01_streams.chrome.json")
    scheduler = OperationScheduler(ParameterSets.set_c())
    boot_trace = record_bootstrap_trace(ParameterSets.set_c(),
                                        proxy_log2n=9)
    dag = lower_trace(
        boot_trace, params=scheduler.params, style="pe",
        device=scheduler.device, ntt_variant=scheduler.ntt.variant,
        geometry=scheduler.geometry,
    )
    boot_run = dag.run()
    save_chrome_trace(
        boot_run, RESULTS_DIR / "recorded_bootstrap.chrome.json")
    assert boot_run.kernel_count == dag.kernel_count
    # run_dag entries carry graph context, so the export has flow arrows.
    assert any(e.deps for e in boot_run.entries)

    # Streams cannot overlap full-device grids.
    assert streamed.elapsed_us > 0.95 * serial.elapsed_us
    # TensorFHE launches 35 kernels; WarpDrive needs at most 2.
    assert serial.kernel_count == 35
    assert wd.kernel_count <= 2
    # And the WarpDrive timeline is roughly an order of magnitude shorter.
    assert serial.elapsed_us / wd.elapsed_us > 5
