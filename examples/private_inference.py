#!/usr/bin/env python
"""Private neural-network inference, end to end.

A client encrypts a feature vector; the server runs a small MLP —
dense layers as BSGS linear transforms, activations as Chebyshev
polynomials — without ever seeing the data; the client decrypts only the
scores. This is the composition pattern behind the paper's ResNet and
HELR workloads, runnable on a laptop.

Run: python examples/private_inference.py
"""

import numpy as np

from repro.ckks import CkksContext, CkksParams
from repro.workloads.mlp import EncryptedMlp, plaintext_mlp, random_mlp


def main():
    params = CkksParams(n=64, max_level=12, num_special=2, dnum=13,
                        scale_bits=26, name="inference-demo")
    ctx = CkksContext.create(params, seed=42)
    rng = np.random.default_rng(42)

    print("Building an 8 -> 6 -> 3 MLP (weights public to the server)...")
    layers = random_mlp(rng, [8, 6, 3])
    mlp = EncryptedMlp(ctx, layers)
    print(f"  depth: {mlp.levels_needed()} levels, "
          f"rotation keys: {mlp.required_rotations()}")
    keys = ctx.keygen(rotations=mlp.required_rotations())

    for i in range(3):
        x = rng.normal(size=8) * 0.5
        vec = np.zeros(ctx.slots)
        vec[:8] = x
        ct = ctx.encrypt(vec, keys)          # client -> server
        scores_ct = mlp.infer(ct, keys)      # server-side, encrypted
        scores = ctx.decrypt_decode_real(scores_ct, keys)[:3]  # client
        reference = plaintext_mlp(layers, x)
        print(f"  input {i}: scores {np.round(scores, 4)} "
              f"(plaintext {np.round(reference, 4)}, "
              f"max err {np.max(np.abs(scores - reference)):.1e}) "
              f"-> class {int(np.argmax(scores))}")

    print("\nThe server saw only ciphertexts; levels consumed:",
          mlp.levels_needed())


if __name__ == "__main__":
    main()
