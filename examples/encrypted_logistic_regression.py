#!/usr/bin/env python
"""Encrypted logistic regression (the HELR workload, functional mini).

Trains a logistic-regression model by gradient descent where the
training samples, the weights and every intermediate value stay
encrypted — the server never sees the data. Mirrors the HELR workload
the paper evaluates (Table XIV), at laptop-friendly ring sizes.

Run: python examples/encrypted_logistic_regression.py
"""

import numpy as np

from repro.ckks import CkksContext, CkksParams
from repro.workloads import (
    EncryptedLogisticRegression,
    plaintext_reference,
    simulate_helr_iteration,
)


def make_dataset(rng, samples=6, features=8):
    """Linearly separable toy data with a known ground-truth direction."""
    truth = rng.normal(size=features)
    truth /= np.linalg.norm(truth)
    x = rng.normal(size=(samples, features)) * 0.5
    y = (x @ truth > 0).astype(float)
    return x, y


def main():
    rng = np.random.default_rng(11)
    x, y = make_dataset(rng)

    print("Setting up CKKS context (N=64, 12 levels)...")
    params = CkksParams(n=64, max_level=12, num_special=2, dnum=13,
                        scale_bits=26, name="helr-demo")
    ctx = CkksContext.create(params, seed=11)
    rotations = EncryptedLogisticRegression.required_rotations(ctx.slots)
    keys = ctx.keygen(rotations=rotations)

    print(f"Training on {x.shape[0]} encrypted samples, "
          f"{x.shape[1]} features, 2 iterations...")
    model = EncryptedLogisticRegression(ctx, keys, learning_rate=1.0)
    w_encrypted = model.train(x, y, iterations=2)
    w_plain = plaintext_reference(x, y, iterations=2)

    print(f"\n  encrypted-trained weights: {np.round(w_encrypted, 4)}")
    print(f"  plaintext reference      : {np.round(w_plain, 4)}")
    print(f"  max deviation            : "
          f"{np.max(np.abs(w_encrypted - w_plain)):.2e}")

    scores = x @ w_encrypted
    accuracy = float(np.mean((scores > 0) == (y > 0.5)))
    print(f"  training accuracy        : {accuracy:.0%}")

    print("\nFull-scale cost (simulated A100, HELR parameter set):")
    timing = simulate_helr_iteration()
    print(f"  one training iteration ~ {timing.amortized_ms:.1f} ms "
          f"(paper reports 113 ms at BS=1)")
    top = sorted(timing.breakdown.items(), key=lambda kv: -kv[1])[:3]
    for note, us in top:
        print(f"    {note:<24} {us / 1e3:8.1f} ms")


if __name__ == "__main__":
    main()
