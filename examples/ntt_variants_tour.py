#!/usr/bin/env python
"""Tour of the WarpDrive-NTT variants (§IV-A/B of the paper).

Shows (1) that all five execution strategies — tensor-core limb GEMMs,
CUDA-core GEMMs, butterflies, and the two fused forms — compute the
bit-identical transform, and (2) how their simulated A100 throughput
compares (the Fig. 6 experiment), including the headline: the fused
tensor+CUDA kernel beats any single kind of processing unit.

Run: python examples/ntt_variants_tour.py
"""

import numpy as np

from repro.core import VARIANTS, WarpDriveNtt
from repro.ntt import NttTables, build_plan
from repro.numtheory import find_ntt_prime


def correctness_tour():
    n = 4096
    q = find_ntt_prime(28, n)
    tables = NttTables(q, n)
    x = np.random.default_rng(0).integers(0, q, size=n, dtype=np.uint64)

    print(f"N = {n}, q = {q}")
    print(f"decomposition plan: {build_plan(n).describe()} "
          f"(the paper's (16x16)x16 for N=4096)")
    print()
    reference = None
    for variant in VARIANTS:
        engine = WarpDriveNtt(n, variant=variant)
        y = engine.forward(x, tables)
        back = engine.inverse(y, tables)
        status = "roundtrip OK" if np.array_equal(back, x) else "BROKEN"
        if reference is None:
            reference = y
            agree = "reference"
        else:
            agree = ("bit-identical" if np.array_equal(y, reference)
                     else "MISMATCH")
        print(f"  {variant:<10} {status:>12}, {agree}")


def throughput_tour():
    print()
    print(f"{'variant':<10}" + "".join(
        f"{'N=2^' + str(b):>12}" for b in (12, 14, 16)
    ) + "   (KOPS, batch 1024, simulated A100)")
    results = {}
    for variant in VARIANTS:
        row = [variant]
        for bits in (12, 14, 16):
            kops = WarpDriveNtt(1 << bits, variant=variant).throughput_kops(
                1024
            )
            results[(variant, bits)] = kops
            row.append(f"{kops:,.0f}")
        print(f"{row[0]:<10}" + "".join(f"{c:>12}" for c in row[1:]))

    print()
    for bits in (12, 14, 16):
        gain = (results[("wd-fuse", bits)] / results[("wd-tensor", bits)]
                - 1) * 100
        print(f"  N=2^{bits}: WD-FUSE beats WD-Tensor by {gain:.1f}% "
              f"(paper: 4-7%) — tensor + CUDA cores running concurrently")


if __name__ == "__main__":
    correctness_tour()
    throughput_tour()
