#!/usr/bin/env python
"""Record a functional bootstrap, lower it to a kernel DAG, price it.

The record -> lower -> simulate loop in ten lines: the SET-C bootstrap
runs *functionally* at proxy ring scale, the recording lowers to
WarpDrive PE kernels at the full N=2^14 ring, and the DAG is priced on
the dependency-aware scheduler. Pass a path to also dump a Chrome
trace-event JSON (open in chrome://tracing or Perfetto).

Run: python examples/trace_quickstart.py [trace.json]
"""

import sys

from repro.ckks import ParameterSets
from repro.core import OperationScheduler
from repro.gpusim.timeline import save_chrome_trace
from repro.trace import lower_trace
from repro.workloads import record_bootstrap_trace

scheduler = OperationScheduler(ParameterSets.set_c())
trace = record_bootstrap_trace(ParameterSets.set_c(), proxy_log2n=9)
dag = lower_trace(trace, params=scheduler.params, style="pe",
                  device=scheduler.device, geometry=scheduler.geometry)
result = dag.run()

print(trace.summary())
print(f"lowered [{dag.style}]: {dag.kernel_count} kernel launches "
      f"at N=2^{dag.n.bit_length() - 1}")
for phase in dag.groups():
    us = sum(e.duration_us for e in result.entries
             if dag.nodes[e.index].group == phase)
    print(f"  {phase:10s} {us / 1e3:8.3f} ms")
print(f"total (overlapped): {result.elapsed_us / 1e3:.3f} ms "
      f"on {scheduler.device.name}")
if len(sys.argv) > 1:
    save_chrome_trace(result, sys.argv[1])
    print(f"chrome trace written to {sys.argv[1]}")
