#!/usr/bin/env python
"""Secure data analysis: aggregate statistics over encrypted records.

The cloud computes mean, variance and covariance of sensitive data —
salaries, medical measurements — without decrypting any individual
record; only the aggregates are revealed to the key holder. This is the
"secure data analysis" motivation from the paper's introduction.

Run: python examples/encrypted_statistics.py
"""

import numpy as np

from repro.ckks import CkksContext, CkksParams
from repro.ckks.slots import SlotOps
from repro.workloads import EncryptedStatistics


def main():
    params = CkksParams(n=64, max_level=10, num_special=2, dnum=11,
                        scale_bits=26, name="stats-demo")
    ctx = CkksContext.create(params, seed=6)
    keys = ctx.keygen(rotations=SlotOps.required_rotations(ctx.slots))
    stats = EncryptedStatistics(ctx)

    rng = np.random.default_rng(7)
    # "Salaries" (scaled to the CKKS-friendly unit interval).
    salaries = rng.normal(0.45, 0.12, ctx.slots).clip(0, 1)
    # "Years of experience", correlated with salary.
    years = (0.6 * salaries + rng.normal(0, 0.05, ctx.slots)).clip(0, 1)

    ct_sal = ctx.encrypt(salaries, keys)
    ct_yrs = ctx.encrypt(years, keys)

    mean = ctx.decrypt_decode_real(stats.mean(ct_sal, keys), keys)[0]
    var = ctx.decrypt_decode_real(stats.variance(ct_sal, keys), keys)[0]
    cov = ctx.decrypt_decode_real(
        stats.covariance(ct_sal, ct_yrs, keys), keys
    )[0]

    print(f"records (encrypted)    : {ctx.slots}")
    print(f"mean   salary          : {mean:.4f} "
          f"(true {salaries.mean():.4f})")
    print(f"var    salary          : {var:.4f} "
          f"(true {salaries.var():.4f})")
    print(f"cov(salary, years)     : {cov:.4f} "
          f"(true {np.mean(salaries * years) - salaries.mean() * years.mean():.4f})")

    corr = cov / np.sqrt(
        var * ctx.decrypt_decode_real(
            stats.variance(ct_yrs, keys), keys
        )[0]
    )
    print(f"correlation (derived)  : {corr:.3f} "
          f"(true {np.corrcoef(salaries, years)[0, 1]:.3f})")
    print("\nNo individual record was ever decrypted on the server.")


if __name__ == "__main__":
    main()
