#!/usr/bin/env python
"""Encrypted image filtering (the ResNet workload's conv primitive).

Applies a 3x3 Gaussian blur and an edge detector to an encrypted image
using rotations + masked plaintext multiplications — the multiplexed-
convolution dataflow of the paper's ResNet-20 workload, at toy scale.

Run: python examples/encrypted_image_filter.py
"""

import numpy as np

from repro.ckks import CkksContext, CkksParams
from repro.workloads import EncryptedConv2d, conv2d_reference, simulate_resnet20

GAUSSIAN = np.array([[1, 2, 1], [2, 4, 2], [1, 2, 1]]) / 16.0
LAPLACIAN = np.array([[0, 1, 0], [1, -4, 1], [0, 1, 0]], dtype=float)


def render(matrix: np.ndarray) -> str:
    """Tiny ASCII rendering of a small image."""
    lo, hi = matrix.min(), matrix.max()
    span = (hi - lo) or 1.0
    shades = " .:-=+*#%@"
    rows = []
    for row in matrix:
        rows.append("".join(
            shades[int((v - lo) / span * (len(shades) - 1))] for v in row
        ))
    return "\n".join("   " + r for r in rows)


def main():
    height = width = 5
    rng = np.random.default_rng(3)
    image = np.zeros((height, width))
    image[1:4, 1:4] = 1.0          # a bright square
    image += rng.normal(0, 0.05, size=image.shape)

    print("Setting up CKKS (N=128 ring, 64 slots)...")
    params = CkksParams(n=128, max_level=6, num_special=2, dnum=4,
                        scale_bits=26, name="image-demo")
    ctx = CkksContext.create(params, seed=5)
    rotations = EncryptedConv2d.required_rotations(width, ctx.slots)
    keys = ctx.keygen(rotations=rotations)

    flat = np.zeros(ctx.slots)
    flat[: height * width] = image.reshape(-1)
    ct = ctx.encrypt(flat, keys)
    print("input (plaintext view):")
    print(render(image))

    for name, kernel in (("gaussian blur", GAUSSIAN),
                         ("laplacian edges", LAPLACIAN)):
        conv = EncryptedConv2d(ctx, keys, kernel)
        ct_out = conv.forward(ct, height, width)
        decrypted = ctx.decrypt_decode_real(ct_out, keys)
        result = decrypted[: height * width].reshape(height, width)
        reference = conv2d_reference(image, kernel)
        err = float(np.max(np.abs(result - reference)))
        print(f"\n{name} under encryption (max error vs plaintext "
              f"{err:.1e}):")
        print(render(result))

    print("\nFull ResNet-20 inference cost (simulated A100):")
    timing = simulate_resnet20()
    print(f"  {timing.total_s:.2f} s per image at BS=1 "
          f"(paper reports 5.88 s)")


if __name__ == "__main__":
    main()
