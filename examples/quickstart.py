#!/usr/bin/env python
"""Quickstart: encrypt, compute, decrypt with the functional CKKS layer,
then price the same operations on the simulated A100.

Run: python examples/quickstart.py
"""

import numpy as np

from repro.ckks import CkksContext, ParameterSets
from repro.core import WarpDriveFramework


def functional_demo():
    print("=" * 64)
    print("1. Functional CKKS (toy ring, N=64)")
    print("=" * 64)
    ctx = CkksContext.create(ParameterSets.toy(), seed=0)
    keys = ctx.keygen(rotations=[1])

    a = np.array([1.5, 2.5, -3.0, 0.25])
    b = np.array([2.0, -1.0, 0.5, 4.0])
    ct_a = ctx.encrypt(a, keys)
    ct_b = ctx.encrypt(b, keys)

    ct_sum = ctx.hadd(ct_a, ct_b)
    ct_prod = ctx.hmult(ct_a, ct_b, keys)
    ct_rot = ctx.hrotate(ct_a, 1, keys)

    print(f"  a           = {a}")
    print(f"  b           = {b}")
    print(f"  dec(a + b)  = "
          f"{np.round(ctx.decrypt_decode_real(ct_sum, keys)[:4], 4)}")
    print(f"  dec(a * b)  = "
          f"{np.round(ctx.decrypt_decode_real(ct_prod, keys)[:4], 4)}")
    print(f"  dec(rot(a)) = "
          f"{np.round(ctx.decrypt_decode_real(ct_rot, keys)[:4], 4)}")
    print(f"  levels: fresh={ct_a.level}, after HMULT+rescale="
          f"{ct_prod.level}")


def performance_demo():
    print()
    print("=" * 64)
    print("2. Simulated A100 performance (paper parameter set SET-C)")
    print("=" * 64)
    fw = WarpDriveFramework(ParameterSets.set_c())
    print(fw.describe())
    print()
    print(f"  {'operation':<12} {'latency (us)':>14}")
    for op in ("hadd", "pmult", "rescale", "hrotate", "hmult"):
        print(f"  {op:<12} {fw.op_latency_us(op):>14.1f}")
    print(f"\n  NTT throughput (batch 1024): "
          f"{fw.ntt_throughput_kops(1024):,.0f} KOPS")
    print(f"  KeySwitch kernel launches  : "
          f"{fw.scheduler.kernel_count('keyswitch')} "
          f"(the paper's fixed 11-kernel PE design)")


if __name__ == "__main__":
    functional_demo()
    performance_demo()
