#!/usr/bin/env python
"""Slim bootstrapping, end to end and for real (toy ring).

Encrypts a message, burns the ciphertext down to its last level, then
*bootstraps* it — SlotToCoeff, ModRaise, CoeffToSlot and a homomorphic
Chebyshev sine (EvalMod) — recovering a high-level ciphertext that can be
multiplied again. This is the full pipeline behind the paper's Boot
workload (Table XIV), run functionally at N=64.

Run: python examples/bootstrapping_demo.py   (takes ~1-2 minutes)
"""

import numpy as np

from repro.ckks import CkksContext, CkksParams
from repro.ckks.bootstrap import BootstrapConfig, Bootstrapper
from repro.workloads import simulate_bootstrap


def main():
    params = CkksParams(n=64, max_level=14, num_special=2, dnum=15,
                        scale_bits=26, secret_hamming_weight=8,
                        name="boot-demo")
    ctx = CkksContext.create(params, seed=7)
    print("Generating keys (all rotations + conjugation for the linear "
          "transforms)...")
    keys = ctx.keygen(
        rotations=Bootstrapper.required_rotations_for(params), conjugation=True
    )
    boot = Bootstrapper(ctx, BootstrapConfig(sine_degree=63,
                                             eval_range=4.5))

    message = np.zeros(ctx.slots)
    message[:4] = [0.5, -0.25, 0.125, 0.75]
    ct = ctx.encrypt(message, keys, level=1)
    print(f"\nfresh ciphertext level : {ct.level} (nearly exhausted)")

    print("bootstrapping (StC -> ModRaise -> CtS -> EvalMod)...")
    refreshed = boot.bootstrap(ct, keys)
    decoded = ctx.decrypt_decode_real(refreshed, keys)
    print(f"refreshed level        : {refreshed.level}")
    print(f"message error          : "
          f"{np.max(np.abs(decoded - message)):.2e}")

    print("squaring the refreshed ciphertext (impossible before)...")
    squared = ctx.hmult(refreshed, refreshed, keys)
    dec_sq = ctx.decrypt_decode_real(squared, keys)
    print(f"square error           : "
          f"{np.max(np.abs(dec_sq - message**2)):.2e}")

    print("\nFull-scale cost (simulated A100, Boot parameter set):")
    for bs in (1, 16):
        timing = simulate_bootstrap(batch=bs)
        paper = 121 if bs == 1 else 97
        print(f"  BS={bs:<3} amortized {timing.amortized_ms:6.1f} ms "
              f"(paper: {paper} ms)")


if __name__ == "__main__":
    main()
