#!/usr/bin/env python
"""AES-CTR transciphering walkthrough (Table XV).

A client with a weak device encrypts its data with plain AES-128-CTR
(cheap, compact) instead of CKKS (large ciphertexts). The server, which
holds the AES key only under FHE, homomorphically evaluates the AES
keystream and removes it, ending with CKKS ciphertexts of the data.

This demo runs the *client side* for real (the full AES implementation in
repro.workloads.aes, validated against FIPS-197) and prices the *server
side* with the simulator, reproducing the Table XV comparison.

Run: python examples/transciphering_demo.py
"""

import numpy as np

from repro.workloads import (
    cpu_transcipher_minutes,
    ctr_encrypt,
    ctr_keystream,
    simulate_transcipher,
)
from repro.workloads.aes_transcipher import BLOCKS, DATA_BYTES


def client_side():
    print("=" * 64)
    print("Client: real AES-128-CTR encryption")
    print("=" * 64)
    rng = np.random.default_rng(2)
    key = list(rng.integers(0, 256, size=16))
    nonce = list(rng.integers(0, 256, size=12))
    message = b"privacy-preserving analytics payload " * 3

    ciphertext = ctr_encrypt(message, key, nonce)
    print(f"  plaintext : {message[:37]!r}...")
    print(f"  AES ct    : {ciphertext[:16].hex()}... "
          f"({len(ciphertext)} bytes, zero expansion)")

    recovered = ctr_encrypt(ciphertext, key, nonce)
    assert recovered == message
    print("  keystream round-trip verified")
    return key, nonce, len(message)


def server_side():
    print()
    print("=" * 64)
    print("Server: homomorphic keystream evaluation (simulated A100)")
    print("=" * 64)
    result = simulate_transcipher()
    cpu_min = cpu_transcipher_minutes()
    print(f"  workload        : {BLOCKS} blocks = {DATA_BYTES // 1024} KB")
    print(f"  simulated GPU   : {result.latency_min:.2f} min "
          f"({result.throughput_kb_per_s:.1f} KB/s)")
    print(f"  paper GPU       : 3.50 min")
    print(f"  paper CPU (48c) : {cpu_min:.1f} min")
    print(f"  speedup vs CPU  : {cpu_min / result.latency_min:.1f}x "
          f"(paper reports 31.6x)")


if __name__ == "__main__":
    client_side()
    server_side()
