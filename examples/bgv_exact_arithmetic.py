#!/usr/bin/env python
"""BGV: exact integer arithmetic on the same substrate (§VI-B).

The paper argues WarpDrive adapts to other RLWE schemes "by incorporating
additional logic for homomorphic operations". This example runs that
logic: BGV encryption with SIMD integer slots, exact homomorphic
addition/multiplication mod a plaintext prime t, and modulus switching —
all on the very same RNS/NTT machinery the CKKS layer uses.

Run: python examples/bgv_exact_arithmetic.py
"""

import numpy as np

from repro.bgv import BgvContext, BgvParams


def main():
    params = BgvParams.toy()
    ctx = BgvContext(params, seed=1)
    keys = ctx.keygen()
    print(f"BGV: N={params.n}, t={ctx.t} (NTT-friendly plaintext prime), "
          f"L={params.max_level}")

    votes_a = [17, 0, 5, 230, 1]
    votes_b = [3, 12, 5, 70, 0]
    weights = [2, 2, 2, 1, 10]

    ct_a = ctx.encrypt(votes_a, keys)
    ct_b = ctx.encrypt(votes_b, keys)

    # Exact integer pipeline: (a + b) * weights, all under encryption.
    total = ctx.hadd(ct_a, ct_b)
    weighted = ctx.pmult(total, weights)
    print(f"\n  a            = {votes_a}")
    print(f"  b            = {votes_b}")
    print(f"  (a+b)        = {ctx.decrypt(total, keys)[:5].tolist()}")
    print(f"  (a+b)*w      = {ctx.decrypt(weighted, keys)[:5].tolist()} "
          f"(exact integers, no approximation error)")

    # Ciphertext-ciphertext product with relinearization + mod switch.
    prod = ctx.hmult(ct_a, ct_b, keys)
    expected = [x * y for x, y in zip(votes_a, votes_b)]
    print(f"  a*b          = {ctx.decrypt(prod, keys)[:5].tolist()} "
          f"(expected {expected})")
    print(f"  level after HMULT+ModSwitch: {prod.level} "
          f"(fresh: {ct_a.level})")

    # Depth 2: everything stays exact mod t.
    deep = ctx.hmult(prod, ct_a, keys)
    got = ctx.decrypt(deep, keys)[:5].tolist()
    exact = [((x * y * x + ctx.t // 2) % ctx.t) - ctx.t // 2
             for x, y in zip(votes_a, votes_b)]
    print(f"  a*b*a mod t  = {got} (exact arithmetic in Z_{ctx.t})")
    assert got == exact


if __name__ == "__main__":
    main()
