"""Tests for stream scheduling, timelines and the profiler."""

import pytest

from repro.gpusim import (
    A100_PCIE_80G,
    KernelSpec,
    StallReason,
    aggregate,
    render_timeline,
    run_serial,
    run_streams,
    scheduler_cycles_breakdown,
    simulate_kernel,
    stall_table,
    summarize,
    utilization_table,
)

DEV = A100_PCIE_80G


def kernel(name, blocks=1024, **kw):
    return KernelSpec(name=name, blocks=blocks, warps_per_block=8,
                      int32_ops=1e7, gmem_read_bytes=1e6, **kw)


class TestSerial:
    def test_kernels_serialize(self):
        result = run_serial([kernel("a"), kernel("b"), kernel("c")], DEV)
        assert result.kernel_count == 3
        entries = sorted(result.entries, key=lambda e: e.start_us)
        for prev, nxt in zip(entries, entries[1:]):
            assert nxt.start_us >= prev.end_us - 1e-9

    def test_elapsed_is_sum(self):
        ks = [kernel("a"), kernel("b")]
        result = run_serial(ks, DEV)
        individual = sum(simulate_kernel(k, DEV).elapsed_us for k in ks)
        assert result.elapsed_us == pytest.approx(individual)

    def test_empty(self):
        assert run_serial([], DEV).elapsed_us == 0.0


class TestMultiStream:
    def test_large_grids_serialize_across_streams(self):
        """§III-A: full-device grids in different streams cannot overlap."""
        s0 = [kernel("a", blocks=2048)]
        s1 = [kernel("b", blocks=2048)]
        result = run_streams([s0, s1], DEV)
        entries = sorted(result.entries, key=lambda e: e.start_us)
        assert entries[1].start_us >= entries[0].end_us - 1e-9

    def test_small_grids_overlap(self):
        s0 = [kernel("a", blocks=40)]
        s1 = [kernel("b", blocks=40)]
        result = run_streams([s0, s1], DEV)
        entries = sorted(result.entries, key=lambda e: e.start_us)
        assert entries[0].start_us == entries[1].start_us

    def test_overlap_bounded_by_sm_capacity(self):
        streams = [[kernel(f"k{i}", blocks=60)] for i in range(3)]
        result = run_streams(streams, DEV)
        # 3 x 60 SMs > 108: at most one other kernel can overlap.
        starts = sorted(e.start_us for e in result.entries)
        assert starts[2] > starts[0]

    def test_by_name_grouping(self):
        result = run_serial([kernel("x"), kernel("x"), kernel("y")], DEV)
        groups = result.by_name()
        assert len(groups["x"]) == 2
        assert len(groups["y"]) == 1


class TestStreamReadySemantics:
    """Regression for the scheduler dead-code fix: a stream whose
    predecessor finishes while another stream's kernel is still mid-flight
    must resume at its true ready time (the predecessor's end), not at the
    other stream's completion."""

    @staticmethod
    def sized_kernel(name, blocks, ops):
        return KernelSpec(name=name, blocks=blocks, warps_per_block=8,
                          int32_ops=ops, gmem_read_bytes=1e6)

    def test_successor_starts_at_predecessor_end_mid_overlap(self):
        # Two small grids co-reside (40 + 40 <= 108 SMs). Stream 0 runs two
        # short kernels back-to-back while stream 1's long kernel is still
        # executing: the second short kernel's start must equal the first's
        # end, well before the long kernel finishes.
        short = self.sized_kernel("short", 40, 1e6)
        long_k = self.sized_kernel("long", 40, 5e8)
        result = run_streams([[short, short], [long_k]], DEV)
        by_name = result.by_name()
        s1, s2 = sorted(by_name["short"], key=lambda e: e.start_us)
        (lk,) = by_name["long"]
        assert s1.start_us == 0.0
        assert lk.start_us == 0.0
        assert s2.start_us == pytest.approx(s1.end_us)
        assert s2.end_us < lk.end_us  # overlap really happened mid-flight

    def test_ready_stream_waits_only_for_sms(self):
        # Stream 0's first kernel (40 SMs) overlaps stream 1's long kernel
        # (60 SMs). When stream 0 becomes ready mid-flight its follow-up
        # needs 90 SMs but only 48 are free — it must start exactly when
        # the long kernel releases its SMs, not sooner or later.
        small = self.sized_kernel("small", 40, 1e6)
        long_k = self.sized_kernel("long", 60, 5e8)
        follow = self.sized_kernel("follow", 90, 1e6)
        result = run_streams([[small, follow], [long_k]], DEV)
        by_name = result.by_name()
        (lk,) = by_name["long"]
        (fk,) = by_name["follow"]
        (sk,) = by_name["small"]
        assert sk.start_us == 0.0 and lk.start_us == 0.0
        assert sk.end_us < lk.end_us  # stream 0 ready mid-flight
        assert fk.start_us == pytest.approx(lk.end_us)


class TestTimelineRendering:
    def test_render_contains_streams_and_total(self):
        result = run_streams(
            [[kernel("alpha")], [kernel("beta", blocks=40)]], DEV
        )
        art = render_timeline(result, title="demo")
        assert "demo" in art
        assert "total:" in art
        assert "s0" in art and "s1" in art

    def test_render_empty(self):
        from repro.gpusim.streams import ExecutionResult

        assert "empty" in render_timeline(ExecutionResult())

    def test_summary_lists_all_kernels(self):
        result = run_serial([kernel("one"), kernel("two")], DEV)
        text = summarize(result)
        assert "one" in text and "two" in text


class TestProfiler:
    def test_aggregate_counts(self):
        profiles = [simulate_kernel(kernel(f"k{i}"), DEV) for i in range(4)]
        agg = aggregate(profiles)
        assert agg.kernel_count == 4
        assert agg.total_us == pytest.approx(
            sum(p.elapsed_us for p in profiles)
        )
        assert agg.issued_instructions == pytest.approx(
            sum(p.issued_instructions for p in profiles)
        )

    def test_aggregate_requires_profiles(self):
        with pytest.raises(ValueError):
            aggregate([])

    def test_stall_table_renders(self):
        profiles = {
            "Stage 1": [simulate_kernel(kernel("s1"), DEV)],
            "Stage 2": [simulate_kernel(kernel("s2"), DEV)],
        }
        text = stall_table(profiles)
        assert "Stage 1" in text and "Stage 2" in text
        assert "Stall cycles / issued instruction" in text

    def test_scheduler_breakdown_includes_selected(self):
        profiles = [simulate_kernel(kernel("k"), DEV)]
        breakdown = scheduler_cycles_breakdown(profiles)
        assert "selected" in breakdown
        assert breakdown["selected"] > 0

    def test_utilization_table(self):
        profiles = [simulate_kernel(kernel("k"), DEV)]
        text = utilization_table({"warpdrive": aggregate(profiles)})
        assert "warpdrive" in text

    def test_total_stalls_merge(self):
        result = run_serial([kernel("a"), kernel("b")], DEV)
        merged = result.total_stalls()
        individual = sum(
            p.stalls.total for p in result.profiles
        )
        assert merged.total == pytest.approx(individual)


class TestStallBreakdownContainer:
    def test_add_and_fraction(self):
        from repro.gpusim import StallBreakdown

        b = StallBreakdown()
        b.add(StallReason.LG_THROTTLE, 75)
        b.add(StallReason.MATH_THROTTLE, 25)
        assert b.total == 100
        assert b.fraction(StallReason.LG_THROTTLE) == pytest.approx(0.75)
        assert b.memory_related == 75

    def test_negative_rejected(self):
        from repro.gpusim import StallBreakdown

        with pytest.raises(ValueError):
            StallBreakdown().add(StallReason.WAIT, -1)


class TestChromeTrace:
    def test_export_structure(self):
        import json

        from repro.gpusim import to_chrome_trace

        result = run_streams(
            [[kernel("alpha")], [kernel("beta", blocks=40)]], DEV
        )
        trace = to_chrome_trace(result)
        assert "traceEvents" in trace
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in events} == {"alpha", "beta"}
        for e in events:
            assert e["dur"] > 0
            assert "bound_by" in e["args"]
        json.dumps(trace)  # serializable

    def test_save_to_file(self, tmp_path):
        import json

        from repro.gpusim import save_chrome_trace

        result = run_serial([kernel("a")], DEV)
        path = tmp_path / "trace.json"
        save_chrome_trace(result, str(path))
        loaded = json.loads(path.read_text())
        assert any(e.get("ph") == "X" for e in loaded["traceEvents"])
