"""Tests for the kernel-pricing engine: occupancy, roofline, stalls."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpusim import (
    A100_PCIE_80G,
    V100,
    KernelSpec,
    StallReason,
    compute_occupancy,
    simulate_kernel,
)

DEV = A100_PCIE_80G


def make_kernel(**kwargs):
    defaults = dict(name="k", blocks=1024, warps_per_block=8)
    defaults.update(kwargs)
    return KernelSpec(**defaults)


class TestKernelSpec:
    def test_derived_counts(self):
        k = make_kernel(int32_ops=3200, tensor_macs=8192,
                        gmem_read_bytes=1280, smem_read_bytes=256)
        assert k.alu_warp_instructions == 100
        assert k.mma_warp_instructions == 2
        assert k.gmem_warp_instructions == 10
        assert k.smem_warp_instructions == 2
        assert k.total_warps == 1024 * 8
        assert k.threads == 1024 * 8 * 32

    def test_coalescing_inflates_transactions(self):
        good = make_kernel(gmem_read_bytes=12800)
        bad = make_kernel(gmem_read_bytes=12800, coalescing=0.25)
        assert bad.gmem_warp_instructions == 4 * good.gmem_warp_instructions

    def test_validation(self):
        with pytest.raises(ValueError):
            make_kernel(blocks=0)
        with pytest.raises(ValueError):
            make_kernel(coalescing=0.0)
        with pytest.raises(ValueError):
            make_kernel(int32_ops=-1)

    def test_scaled(self):
        k = make_kernel(int32_ops=100, gmem_read_bytes=200)
        s = k.scaled(3)
        assert s.int32_ops == 300
        assert s.gmem_read_bytes == 600
        assert s.blocks == k.blocks

    def test_memory_instruction_fraction(self):
        k = make_kernel(int32_ops=32, gmem_read_bytes=128)
        assert k.memory_instruction_fraction == pytest.approx(0.5)


class TestOccupancy:
    def test_smem_limits_blocks(self):
        k = make_kernel(smem_per_block_bytes=48 * 1024, regs_per_thread=32)
        occ = compute_occupancy(k, DEV)
        assert occ.blocks_per_sm == 3  # 164KB / 48KB
        assert occ.limited_by == "shared memory"

    def test_oversized_smem_rejected(self):
        k = make_kernel(smem_per_block_bytes=200 * 1024)
        with pytest.raises(ValueError):
            compute_occupancy(k, DEV)

    def test_warp_slots_limit(self):
        k = make_kernel(warps_per_block=32, regs_per_thread=16)
        occ = compute_occupancy(k, DEV)
        assert occ.blocks_per_sm == 2  # 64 warp slots / 32

    def test_register_limit(self):
        k = make_kernel(warps_per_block=8, regs_per_thread=255)
        occ = compute_occupancy(k, DEV)
        assert occ.limited_by == "registers"

    def test_small_grid_uses_few_sms(self):
        k = make_kernel(blocks=4)
        occ = compute_occupancy(k, DEV)
        assert occ.sm_used == 4

    def test_large_grid_caps_at_sm_count(self):
        occ = compute_occupancy(make_kernel(blocks=10**6), DEV)
        assert occ.sm_used == DEV.sm_count

    def test_resident_warps_bounded(self):
        k = make_kernel(warps_per_block=8, regs_per_thread=32)
        occ = compute_occupancy(k, DEV)
        assert occ.resident_warps_per_sm <= DEV.max_warps_per_sm


class TestRoofline:
    def test_compute_bound_kernel(self):
        k = make_kernel(int32_ops=1e10, gmem_read_bytes=1e3)
        p = simulate_kernel(k, DEV)
        assert p.bound_by == "int32"
        expected = 1e10 / (DEV.int32_lanes_per_sm * DEV.sm_count)
        assert p.exec_cycles == pytest.approx(expected)

    def test_dram_bound_kernel(self):
        k = make_kernel(int32_ops=1e3, gmem_read_bytes=1e9)
        p = simulate_kernel(k, DEV)
        assert p.bound_by == "dram"
        # Full device: bandwidth-limited time = bytes / (GB/s -> B/cycle).
        assert p.exec_cycles == pytest.approx(
            1e9 / DEV.dram_bytes_per_cycle, rel=0.01
        )

    def test_tensor_bound_kernel(self):
        k = make_kernel(tensor_macs=1e11)
        p = simulate_kernel(k, DEV)
        assert p.bound_by == "tensor"

    def test_tensor_on_tensorless_device_rejected(self):
        k = make_kernel(tensor_macs=100)
        with pytest.raises(ValueError):
            simulate_kernel(k, V100)

    def test_small_grid_gets_less_dram_bandwidth(self):
        big = make_kernel(blocks=1024, gmem_read_bytes=1e9)
        small = make_kernel(blocks=8, gmem_read_bytes=1e9)
        t_big = simulate_kernel(big, DEV).exec_cycles
        t_small = simulate_kernel(small, DEV).exec_cycles
        assert t_small > 5 * t_big

    def test_low_occupancy_exposes_latency(self):
        # One warp per block cannot hide DRAM latency.
        exposed = make_kernel(
            blocks=1024, warps_per_block=1, gmem_read_bytes=1e8,
            smem_per_block_bytes=100 * 1024,
        )
        hidden = make_kernel(
            blocks=1024, warps_per_block=16, gmem_read_bytes=1e8
        )
        assert (
            simulate_kernel(exposed, DEV).exec_cycles
            > simulate_kernel(hidden, DEV).exec_cycles
        )

    def test_launch_overhead_included(self):
        p = simulate_kernel(make_kernel(int32_ops=1), DEV)
        assert p.total_cycles > p.exec_cycles
        assert p.elapsed_us >= DEV.launch_overhead_us

    def test_empty_kernel_still_runs(self):
        p = simulate_kernel(make_kernel(), DEV)
        assert p.exec_cycles > 0


class TestStallAttribution:
    def test_bit_split_kernel_is_lg_throttle_dominated(self):
        """A kernel with extreme memory-to-compute ratio (TensorFHE's
        U32ToU8 stage) must stall predominantly on LG Throttle — the
        Table II signature."""
        k = make_kernel(
            int32_ops=8 * 2**20,          # 8 ALU ops per element
            gmem_read_bytes=4 * 2**20,    # read uint32
            gmem_write_bytes=4 * 2**20,   # write 4 x uint8
            coalescing=0.25,              # byte-granular stores
            warps_per_block=8,
        )
        p = simulate_kernel(k, DEV)
        assert p.stalls.fraction(StallReason.LG_THROTTLE) > 0.3
        assert p.stalls.memory_related_fraction > 0.6

    def test_compute_bound_kernel_math_stalls(self):
        k = make_kernel(int32_ops=1e10, gmem_read_bytes=1e4)
        p = simulate_kernel(k, DEV)
        assert p.stalls.fraction(StallReason.MATH_THROTTLE) > 0.2
        assert p.stalls.fraction(StallReason.LG_THROTTLE) < 0.05

    def test_dram_bound_kernel_long_scoreboard(self):
        # DRAM-bound but with memory instructions sparse amid compute:
        # the wait shows up on the scoreboard, not the LSU queue.
        k = make_kernel(int32_ops=4e9, gmem_read_bytes=1e9,
                        warps_per_block=16)
        p = simulate_kernel(k, DEV)
        assert p.bound_by == "dram"
        assert p.stalls.fraction(StallReason.LONG_SCOREBOARD) > 0.3

    def test_stall_total_consistency(self):
        k = make_kernel(int32_ops=1e7, gmem_read_bytes=1e7)
        p = simulate_kernel(k, DEV)
        warp_cycles = (
            p.exec_cycles
            * p.occupancy.resident_warps_per_sm
            * p.occupancy.sm_used
        )
        assert p.stalls.total + p.issued_instructions == pytest.approx(
            warp_cycles, rel=1e-6
        )

    def test_stall_cycles_per_issued_positive(self):
        p = simulate_kernel(make_kernel(gmem_read_bytes=1e8), DEV)
        assert p.stall_cycles_per_issued > 0


class TestUtilizationMetrics:
    def test_dram_bound_kernel_high_memory_util(self):
        k = make_kernel(gmem_read_bytes=1e9, int32_ops=1e5)
        p = simulate_kernel(k, DEV)
        assert p.memory_throughput_utilization > 80
        assert p.compute_throughput_utilization < 20

    def test_balanced_kernel_high_both(self):
        # Work sized so int32 time == dram time on a full grid.
        bytes_ = 1e8
        cycles = bytes_ / DEV.dram_bytes_per_cycle
        ops = cycles * DEV.int32_lanes_per_sm * DEV.sm_count
        k = make_kernel(gmem_read_bytes=bytes_, int32_ops=ops)
        p = simulate_kernel(k, DEV)
        assert p.memory_throughput_utilization > 80
        assert p.compute_throughput_utilization > 80

    def test_utilization_bounded_by_100(self):
        p = simulate_kernel(
            make_kernel(gmem_read_bytes=1e8, int32_ops=1e8), DEV
        )
        assert p.compute_throughput_utilization <= 100.0001
        assert p.memory_throughput_utilization <= 100.0001


class TestMonotonicity:
    """Sanity properties: more work never takes less time."""

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=1e3, max_value=1e9),
           st.floats(min_value=1.1, max_value=10))
    def test_more_gmem_never_faster(self, base, factor):
        k1 = make_kernel(gmem_read_bytes=base)
        k2 = make_kernel(gmem_read_bytes=base * factor)
        assert (
            simulate_kernel(k2, DEV).exec_cycles
            >= simulate_kernel(k1, DEV).exec_cycles
        )

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=1e3, max_value=1e11),
           st.floats(min_value=1.1, max_value=10))
    def test_more_compute_never_faster(self, base, factor):
        k1 = make_kernel(int32_ops=base)
        k2 = make_kernel(int32_ops=base * factor)
        assert (
            simulate_kernel(k2, DEV).exec_cycles
            >= simulate_kernel(k1, DEV).exec_cycles
        )

    def test_fused_max_beats_serial_sum(self):
        """Co-scheduling tensor and CUDA work in one kernel (max) always
        beats running them serially (sum) — the §IV-B premise."""
        tensor_k = make_kernel(tensor_macs=1e10)
        cuda_k = make_kernel(int32_ops=1e9)
        fused = make_kernel(tensor_macs=1e10, int32_ops=1e9)
        t_serial = (
            simulate_kernel(tensor_k, DEV).exec_cycles
            + simulate_kernel(cuda_k, DEV).exec_cycles
        )
        t_fused = simulate_kernel(fused, DEV).exec_cycles
        assert t_fused < t_serial
