"""KernelSpec.validate(): schema errors fail at the construction site."""

import dataclasses

import pytest

from repro.gpusim import A100_PCIE_80G, KernelSpec, simulate_kernel
from repro.gpusim.stalls import StallReason


def make_kernel(**kwargs):
    defaults = dict(name="k", blocks=64, warps_per_block=8)
    defaults.update(kwargs)
    return KernelSpec(**defaults)


class TestValidate:
    def test_valid_spec_is_chainable(self):
        spec = make_kernel()
        assert spec.validate() is spec

    def test_construction_validates(self):
        with pytest.raises(ValueError, match="at least one warp"):
            make_kernel(blocks=0)

    @pytest.mark.parametrize("fname", [
        "int32_ops", "tensor_macs", "gmem_read_bytes", "gmem_write_bytes",
        "smem_read_bytes", "smem_write_bytes", "barriers",
    ])
    def test_negative_counts_rejected(self, fname):
        with pytest.raises(ValueError, match="non-negative"):
            make_kernel(**{fname: -1})

    @pytest.mark.parametrize("value", [0.0, -0.5, 1.5])
    def test_coalescing_range(self, value):
        with pytest.raises(ValueError, match="coalescing"):
            make_kernel(coalescing=value)

    @pytest.mark.parametrize("value", [0.0, 2.0])
    def test_efficiency_range(self, value):
        with pytest.raises(ValueError, match="efficiency"):
            make_kernel(efficiency=value)

    def test_unknown_stall_name_rejected(self):
        with pytest.raises(ValueError, match="unknown stall pipe"):
            make_kernel(stall_hints={"warp drift": 0.5})

    def test_negative_stall_fraction_rejected(self):
        name = StallReason.LG_THROTTLE.value
        with pytest.raises(ValueError, match="must be >= 0"):
            make_kernel(stall_hints={name: -0.1})

    def test_stall_fractions_must_sum_below_one(self):
        hints = {
            StallReason.LG_THROTTLE.value: 0.7,
            StallReason.LONG_SCOREBOARD.value: 0.6,
        }
        with pytest.raises(ValueError, match="sum to <= 1"):
            make_kernel(stall_hints=hints)

    def test_valid_stall_hints_accepted(self):
        spec = make_kernel(stall_hints={
            StallReason.LG_THROTTLE.value: 0.6,
            StallReason.LONG_SCOREBOARD.value: 0.3,
        })
        assert spec.validate() is spec

    def test_replace_revalidates(self):
        spec = make_kernel()
        with pytest.raises(ValueError, match="non-negative"):
            dataclasses.replace(spec, int32_ops=-1.0)


class TestEngineBackstop:
    def test_submit_revalidates_corrupted_spec(self):
        """A spec mutated after construction (bypassing the frozen
        dataclass) is still caught by the engine's submit-time check."""
        spec = make_kernel(int32_ops=1000.0)
        object.__setattr__(spec, "int32_ops", -1000.0)
        with pytest.raises(ValueError, match="non-negative"):
            simulate_kernel(spec, A100_PCIE_80G)
