"""Process-global profile-cache counters: reset and scoping."""

from repro.gpusim import (
    A100_PCIE_80G,
    DagKernel,
    KernelSpec,
    cache_stats_scope,
    profile_cache_stats,
    reset_cache_stats,
    run_dag,
)

DEV = A100_PCIE_80G


def dag(*names):
    return [
        DagKernel(spec=KernelSpec(name=n, blocks=512, warps_per_block=8,
                                  int32_ops=1e6, gmem_read_bytes=1e5),
                  deps=())
        for n in names
    ]


class TestResetCacheStats:
    def test_reset_zeroes_every_counter(self):
        run_dag(dag("warm", "warm"), DEV)
        assert profile_cache_stats()["runs"] > 0
        reset_cache_stats()
        stats = profile_cache_stats()
        assert all(v == 0 for v in stats.values())

    def test_counters_accumulate_after_reset(self):
        reset_cache_stats()
        run_dag(dag("a", "a"), DEV)
        stats = profile_cache_stats()
        assert stats["runs"] == 1
        assert stats["hits"] == 1  # second "a" reuses the first profile
        assert stats["misses"] == 1


class TestCacheStatsScope:
    def test_scope_isolates_block_counters(self):
        reset_cache_stats()
        run_dag(dag("outer"), DEV)
        before = profile_cache_stats()
        with cache_stats_scope() as scope:
            run_dag(dag("inner", "inner"), DEV)
        assert scope.stats["runs"] == 1
        assert scope.stats["hits"] == 1
        after = profile_cache_stats()
        # Outer counters were restored and the block's added on top.
        assert after["runs"] == before["runs"] + scope.stats["runs"]
        assert after["hits"] == before["hits"] + scope.stats["hits"]
        assert after["misses"] == before["misses"] + scope.stats["misses"]
