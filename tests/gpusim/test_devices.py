"""Tests for the device catalogue and cross-device behaviour."""

import pytest

from repro.gpusim import (
    A100_PCIE_80G,
    A100_SXM_40G,
    H100_SXM,
    KNOWN_DEVICES,
    MI100,
    V100,
    KernelSpec,
    simulate_kernel,
)


class TestCatalogue:
    def test_all_registered(self):
        for spec in (A100_PCIE_80G, A100_SXM_40G, H100_SXM, V100, MI100):
            assert KNOWN_DEVICES[spec.name] is spec

    def test_a100_headline_numbers(self):
        dev = A100_PCIE_80G
        assert dev.sm_count == 108
        assert dev.int32_ops_per_cycle == 108 * 64
        # 2048 MACs/cycle/SM * 108 SM * 1.41 GHz * 2 ops/MAC ~ 624 TOPS.
        tops = dev.tensor_macs_per_cycle * dev.clock_ghz * 2 / 1e3
        assert tops == pytest.approx(624, rel=0.01)

    def test_sxm40_differs_only_in_bandwidth(self):
        assert A100_SXM_40G.sm_count == A100_PCIE_80G.sm_count
        assert A100_SXM_40G.dram_gbps < A100_PCIE_80G.dram_gbps

    def test_v100_has_no_int8_tensor_path(self):
        assert V100.tensor_int8_macs_per_cycle_per_sm == 0

    def test_h100_outclasses_a100(self):
        assert H100_SXM.tensor_macs_per_cycle > A100_PCIE_80G.tensor_macs_per_cycle
        assert H100_SXM.dram_gbps > A100_PCIE_80G.dram_gbps
        assert H100_SXM.smem_per_sm_bytes > A100_PCIE_80G.smem_per_sm_bytes

    def test_cycle_time_conversions(self):
        dev = A100_PCIE_80G
        assert dev.cycles_to_us(dev.us_to_cycles(12.5)) == pytest.approx(
            12.5
        )

    def test_with_overrides(self):
        slow = A100_PCIE_80G.with_overrides(dram_gbps=1000.0)
        assert slow.dram_gbps == 1000.0
        assert slow.sm_count == A100_PCIE_80G.sm_count
        # Original untouched (frozen dataclass).
        assert A100_PCIE_80G.dram_gbps == 1935.0


class TestCrossDeviceBehaviour:
    def make(self, **kw):
        defaults = dict(name="k", blocks=2048, warps_per_block=8)
        defaults.update(kw)
        return KernelSpec(**defaults)

    def test_dram_bound_kernel_scales_with_bandwidth(self):
        k = self.make(gmem_read_bytes=1e9)
        t_a100 = simulate_kernel(k, A100_PCIE_80G).exec_us
        t_h100 = simulate_kernel(k, H100_SXM).exec_us
        t_v100 = simulate_kernel(k, V100).exec_us
        assert t_h100 < t_a100 < t_v100

    def test_tensor_kernel_scales_with_tensor_throughput(self):
        k = self.make(tensor_macs=1e11)
        t_a100 = simulate_kernel(k, A100_PCIE_80G).exec_cycles
        t_h100 = simulate_kernel(k, H100_SXM).exec_cycles
        assert t_h100 < t_a100
        t_mi100 = simulate_kernel(k, MI100).exec_cycles
        assert t_mi100 > t_a100

    def test_compute_kernel_uses_more_sms_on_h100(self):
        k = self.make(blocks=10**5, int32_ops=1e10)
        p_a = simulate_kernel(k, A100_PCIE_80G)
        p_h = simulate_kernel(k, H100_SXM)
        assert p_h.occupancy.sm_used == 132
        assert p_a.occupancy.sm_used == 108
