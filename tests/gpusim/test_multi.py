"""Fleet layer: admission, FIFO execution, HBM safety, determinism."""

import heapq

import numpy as np
import pytest

from repro.gpusim import GpuFleet, fleet_to_chrome_trace
from repro.gpusim.multi import FleetJob


def job(label="j", service_us=100.0, hbm=1000, **kw):
    return FleetJob(label=label, service_us=service_us, hbm_bytes=hbm,
                    kind=kw.pop("kind", "k"), **kw)


class TestAdmission:
    def test_idle_device_starts_immediately(self):
        fleet = GpuFleet(2)
        j = job()
        admitted, started = fleet.admit(j, 0, now=5.0)
        assert admitted and started is j
        assert j.device == 0
        assert j.start_us == 5.0
        assert j.end_us == 105.0

    def test_busy_device_queues_fifo(self):
        fleet = GpuFleet(1)
        a, b, c = job("a"), job("b"), job("c")
        _, started = fleet.admit(a, 0, 0.0)
        assert started is a
        for j in (b, c):
            admitted, started = fleet.admit(j, 0, 0.0)
            assert admitted and started is None
        nxt = fleet.complete(a, a.end_us)
        assert nxt is b
        nxt = fleet.complete(b, b.end_us)
        assert nxt is c
        assert fleet.complete(c, c.end_us) is None
        labels = [e.label for e in fleet.devices[0].entries]
        assert labels == ["a", "b", "c"]

    def test_memory_rejection_leaves_job_untouched(self):
        fleet = GpuFleet(1, hbm_bytes=4096)
        big = job(hbm=5000)
        admitted, started = fleet.admit(big, 0, 0.0)
        assert not admitted and started is None
        assert fleet.rejections == 1
        assert big.device == -1
        assert fleet.devices[0].pool.in_use == 0

    def test_completion_frees_memory_for_next(self):
        fleet = GpuFleet(1, hbm_bytes=4096)
        a = job("a", hbm=3000)
        fleet.admit(a, 0, 0.0)
        admitted, _ = fleet.admit(job("b", hbm=3000), 0, 0.0)
        assert not admitted
        fleet.complete(a, a.end_us)
        admitted, started = fleet.admit(job("c", hbm=3000), 0, a.end_us)
        assert admitted and started is not None

    def test_complete_wrong_job_raises(self):
        fleet = GpuFleet(1)
        a, b = job("a"), job("b")
        fleet.admit(a, 0, 0.0)
        fleet.admit(b, 0, 0.0)
        with pytest.raises(RuntimeError, match="not running"):
            fleet.complete(b, 1.0)

    def test_busy_accounting(self):
        fleet = GpuFleet(1)
        a = job(service_us=42.0)
        fleet.admit(a, 0, 0.0)
        fleet.complete(a, a.end_us)
        dev = fleet.devices[0]
        assert dev.busy_us == pytest.approx(42.0)
        assert dev.utilization(84.0) == pytest.approx(0.5)


class TestLeastLoaded:
    def test_ties_break_by_index(self):
        fleet = GpuFleet(3)
        assert fleet.least_loaded(0.0) == 0

    def test_prefers_empty_device(self):
        fleet = GpuFleet(2)
        fleet.admit(job(), 0, 0.0)
        assert fleet.least_loaded(0.0) == 1

    def test_fitting_filter(self):
        fleet = GpuFleet(2, hbm_bytes=4096)
        fleet.admit(job(hbm=4000), 0, 0.0)
        assert fleet.least_loaded(0.0, fitting=3000) == 1
        fleet.admit(job(hbm=4000), 1, 0.0)
        assert fleet.least_loaded(0.0, fitting=3000) is None

    def test_outstanding_counts_queue_and_remaining(self):
        fleet = GpuFleet(1)
        a = job("a", service_us=100.0)
        b = job("b", service_us=50.0)
        fleet.admit(a, 0, 0.0)
        fleet.admit(b, 0, 0.0)
        assert fleet.devices[0].outstanding_us(40.0) == pytest.approx(110.0)


class TestValidation:
    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError, match="at least one device"):
            GpuFleet(0)

    def test_heterogeneous_specs(self):
        from repro.gpusim import A100_PCIE_80G, V100

        fleet = GpuFleet(specs=[A100_PCIE_80G, V100])
        assert len(fleet) == 2
        assert fleet.devices[1].spec is V100


class TestChromeTrace:
    def test_export_structure(self):
        fleet = GpuFleet(2)
        a, b = job("a"), job("b")
        fleet.admit(a, 0, 0.0)
        fleet.admit(b, 1, 10.0)
        fleet.complete(a, a.end_us)
        fleet.complete(b, b.end_us)
        doc = fleet_to_chrome_trace(fleet.result())
        events = doc["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        assert {s["name"] for s in slices} == {"a", "b"}
        assert {s["pid"] for s in slices} == {0, 1}
        counters = [e for e in events if e["ph"] == "C"]
        assert counters  # HBM + queue depth tracks sampled at events
        meta = [e for e in events if e["ph"] == "M"]
        assert len(meta) == 4  # process + thread name per device


def _drive(seed, num_jobs=300, devices=3, capacity=10_000):
    """Random admit/complete stream; returns the full decision log."""
    rng = np.random.default_rng(seed)
    fleet = GpuFleet(devices, hbm_bytes=capacity)
    heap, seq = [], 0
    now, rejected, log = 0.0, 0, []
    for i in range(num_jobs):
        now += float(rng.exponential(50.0))
        while heap and heap[0][0] <= now:
            end, _, running = heapq.heappop(heap)
            started = fleet.complete(running, end)
            if started is not None:
                heapq.heappush(heap, (started.end_us, seq, started))
                seq += 1
        j = job(f"j{i}", service_us=float(rng.uniform(10.0, 300.0)),
                hbm=int(rng.integers(1, capacity // 2)))
        device = int(rng.integers(devices))
        admitted, started = fleet.admit(j, device, now)
        if not admitted:
            rejected += 1
        elif started is not None:
            heapq.heappush(heap, (started.end_us, seq, started))
            seq += 1
        for dev in fleet.devices:
            assert dev.pool.in_use <= dev.pool.capacity
        log.append((i, device, admitted))
    while heap:
        end, _, running = heapq.heappop(heap)
        started = fleet.complete(running, end)
        if started is not None:
            heapq.heappush(heap, (started.end_us, seq, started))
            seq += 1
    return fleet, rejected, log


class TestFleetProperties:
    """Fleet-wide HBM accounting under a randomized admit stream."""

    def test_capacity_never_exceeded_and_everything_drains(self):
        fleet, rejected, log = _drive(seed=0)
        ran = sum(len(d.entries) for d in fleet.devices)
        assert ran == len(log) - rejected
        assert fleet.rejections == rejected
        for dev in fleet.devices:
            assert dev.pool.in_use == 0
            assert dev.running is None and not dev.queue

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_rejections_deterministic_given_seed(self, seed):
        fleet_a, rej_a, log_a = _drive(seed)
        fleet_b, rej_b, log_b = _drive(seed)
        assert rej_a == rej_b
        assert log_a == log_b
        assert ([e.label for d in fleet_a.devices for e in d.entries]
                == [e.label for d in fleet_b.devices for e in d.entries])

    def test_different_seeds_diverge(self):
        _, _, log_a = _drive(10)
        _, _, log_b = _drive(11)
        assert log_a != log_b
