"""Job catalog: pricing, caching, batching sublinearity, SLOs."""

import pytest

from repro.serving import JobCatalog, default_catalog


@pytest.fixture(scope="module")
def catalog():
    return default_catalog(("boot",))


class TestCatalog:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            JobCatalog(("boot", "nope"))

    def test_pricing_is_cached(self, catalog):
        assert catalog.price("boot", 2) is catalog.price("boot", 2)

    def test_batching_is_sublinear(self, catalog):
        solo = catalog.service_us("boot", 1)
        four = catalog.service_us("boot", 4)
        assert solo < four < 4 * solo

    def test_batch_clamped_to_class_ceiling(self, catalog):
        cap = catalog.max_batch("boot")
        assert catalog.price("boot", cap + 10).batch == cap

    def test_working_bytes_grow_with_batch(self, catalog):
        assert (catalog.working_bytes("boot", 4)
                > catalog.working_bytes("boot", 1) > 0)

    def test_slo_is_a_multiple_of_solo_latency(self, catalog):
        factor = catalog.classes["boot"].slo_factor
        assert catalog.slo_us("boot") == pytest.approx(
            factor * catalog.service_us("boot", 1))

    def test_optimized_is_never_slower(self, catalog):
        base = catalog.service_us("boot", 1)
        opt = catalog.service_us("boot", 1, optimized=True)
        assert opt <= base + 1e-6
