"""End-to-end serving simulation: conservation, determinism, pressure."""

import json

import pytest

from repro.serving import (
    ServingConfig,
    ServingSimulator,
    default_catalog,
    simulate_serving,
)


@pytest.fixture(scope="module")
def catalog():
    return default_catalog(("boot",))


def config(**kw):
    kw.setdefault("kinds", ("boot",))
    kw.setdefault("rate_per_s", 100.0)
    kw.setdefault("horizon_us", 200_000.0)
    kw.setdefault("seed", 0)
    return ServingConfig(**kw)


class TestConservation:
    def test_every_submitted_job_completes(self, catalog):
        rep = simulate_serving(config(gpus=2), catalog)
        assert rep.submitted > 0
        assert rep.completed == rep.submitted
        assert rep.completed_by_horizon <= rep.completed

    def test_latencies_cover_service_time(self, catalog):
        rep = simulate_serving(config(), catalog)
        assert rep.latency["p50_us"] >= catalog.service_us("boot", 1)
        assert rep.makespan_us > 0

    def test_drain_leaves_fleet_empty(self, catalog):
        sim = ServingSimulator(config(gpus=2), catalog)
        sim.run()
        for dev in sim.fleet.devices:
            assert dev.running is None and not dev.queue
            assert dev.pool.in_use == 0

    def test_simulators_are_single_use(self, catalog):
        sim = ServingSimulator(config(), catalog)
        sim.run()
        with pytest.raises(RuntimeError, match="single-use"):
            sim.run()


class TestDeterminism:
    def test_same_seed_identical_report(self, catalog):
        a = simulate_serving(config(gpus=2, arrival="burst"), catalog)
        b = simulate_serving(config(gpus=2, arrival="burst"), catalog)
        assert (json.dumps(a.to_dict(), sort_keys=True)
                == json.dumps(b.to_dict(), sort_keys=True))

    def test_different_seed_differs(self, catalog):
        a = simulate_serving(config(seed=0), catalog)
        b = simulate_serving(config(seed=1), catalog)
        assert (json.dumps(a.to_dict(), sort_keys=True)
                != json.dumps(b.to_dict(), sort_keys=True))

    def test_rejections_deterministic_under_pressure(self, catalog):
        cfg = config(gpus=1, rate_per_s=400.0,
                     hbm_bytes=2 * 2**30, max_wait_us=2_000.0)
        a = simulate_serving(cfg, catalog)
        b = simulate_serving(cfg, catalog)
        assert a.rejections == b.rejections
        assert a.rejections > 0  # the regime actually exercises admission


class TestEventOrdering:
    def test_completion_beats_arrival_at_equal_time(self, catalog):
        # Engineered tie: all three kinds pushed at t=10 in reverse
        # priority order.  The tag must decide (completions free HBM
        # before same-instant arrivals dispatch), not insertion order.
        import heapq

        from repro.serving.simulator import _ARRIVAL, _COMPLETE, _DEADLINE

        sim = ServingSimulator(config(), catalog)
        sim._push(10.0, _DEADLINE, None)
        sim._push(10.0, _ARRIVAL, "boot")
        sim._push(10.0, _COMPLETE, "sentinel")
        tags = [heapq.heappop(sim._heap)[1] for _ in range(3)]
        assert tags == [_COMPLETE, _ARRIVAL, _DEADLINE]

    def test_equal_tag_ties_keep_insertion_order(self, catalog):
        import heapq

        from repro.serving.simulator import _ARRIVAL

        sim = ServingSimulator(config(), catalog)
        sim._push(10.0, _ARRIVAL, "first")
        sim._push(10.0, _ARRIVAL, "second")
        payloads = [heapq.heappop(sim._heap)[3] for _ in range(2)]
        assert payloads == ["first", "second"]


class TestArrivalModes:
    def test_closed_loop_completes_population(self, catalog):
        cfg = config(arrival="closed", clients=6,
                     think_time_us=5_000.0, horizon_us=150_000.0)
        rep = simulate_serving(cfg, catalog)
        assert rep.submitted >= 6
        assert rep.completed == rep.submitted

    def test_unknown_arrival_rejected(self, catalog):
        with pytest.raises(ValueError, match="unknown arrival"):
            ServingSimulator(config(arrival="adversarial"),
                             catalog).run()


class TestMemoryPressure:
    def test_oversized_batch_is_an_error(self, catalog):
        cfg = config(hbm_bytes=64 * 2**20)  # smaller than one batch
        with pytest.raises(ValueError, match="lower max_batch"):
            simulate_serving(cfg, catalog)

    def test_pinned_policy_waits_out_memory(self, catalog):
        cfg = config(gpus=1, rate_per_s=400.0, policy="round_robin",
                     hbm_bytes=2 * 2**30, max_wait_us=2_000.0)
        rep = simulate_serving(cfg, catalog)
        assert rep.rejections > 0
        assert rep.completed == rep.submitted  # nothing is lost

    def test_memory_aware_defers_and_recovers(self, catalog):
        cfg = config(gpus=2, rate_per_s=400.0, policy="memory_aware",
                     hbm_bytes=2 * 2**30, max_wait_us=2_000.0)
        rep = simulate_serving(cfg, catalog)
        assert rep.completed == rep.submitted


class TestReportShape:
    def test_report_round_trips_json(self, catalog):
        rep = simulate_serving(config(gpus=2), catalog)
        doc = json.loads(json.dumps(rep.to_dict()))
        assert doc["config"]["gpus"] == 2
        assert set(doc["per_kind"]) == {"boot"}
        assert len(doc["devices"]) == 2
        assert 0.0 <= doc["slo_attainment"] <= 1.0
        assert doc["latency"]["p50_us"] <= doc["latency"]["p99_us"]

    def test_config_embeds_burst_fields(self, catalog):
        cfg = config(arrival="burst", burst_factor=2.0,
                     burst_period_us=100_000.0, burst_duty=0.5)
        doc = simulate_serving(cfg, catalog).to_dict()["config"]
        assert doc["burst_factor"] == 2.0
        assert doc["burst_period_us"] == 100_000.0
        assert doc["burst_duty"] == 0.5

    def test_summary_is_printable(self, catalog):
        rep = simulate_serving(config(), catalog)
        text = rep.summary()
        assert "jobs/s" in text and "p99" in text
