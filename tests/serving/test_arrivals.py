"""Arrival processes: distributions, seeding, validation."""

import numpy as np
import pytest

from repro.serving import (
    ClosedLoop,
    OpenLoop,
    burst_arrivals,
    poisson_arrivals,
)

KINDS = ("a", "b")


class TestPoisson:
    def test_rate_is_roughly_honored(self):
        rng = np.random.default_rng(0)
        arr = poisson_arrivals(100.0, 2_000_000.0, KINDS, rng)
        assert 140 <= len(arr) <= 260  # ~200 expected
        assert all(0 <= a.t_us < 2_000_000.0 for a in arr)
        assert arr == sorted(arr, key=lambda a: a.t_us)

    def test_same_seed_same_stream(self):
        a = poisson_arrivals(50.0, 500_000.0, KINDS,
                             np.random.default_rng(3))
        b = poisson_arrivals(50.0, 500_000.0, KINDS,
                             np.random.default_rng(3))
        assert a == b

    def test_mix_weights_bias_kinds(self):
        rng = np.random.default_rng(1)
        arr = poisson_arrivals(200.0, 1_000_000.0, KINDS, rng,
                               mix=(1.0, 0.0))
        assert arr and all(a.kind == "a" for a in arr)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="positive"):
            poisson_arrivals(0.0, 1e6, KINDS, rng)
        with pytest.raises(ValueError, match="weights"):
            poisson_arrivals(10.0, 1e6, KINDS, rng, mix=(1.0,))
        with pytest.raises(ValueError, match="non-negative"):
            poisson_arrivals(10.0, 1e6, KINDS, rng, mix=(1.0, -1.0))


class TestBurst:
    def test_mean_rate_preserved(self):
        rng = np.random.default_rng(0)
        arr = burst_arrivals(100.0, 4_000_000.0, KINDS, rng)
        assert 280 <= len(arr) <= 520  # ~400 expected on average

    def test_burst_windows_are_denser(self):
        rng = np.random.default_rng(2)
        arr = burst_arrivals(100.0, 4_000_000.0, KINDS, rng,
                             burst_factor=4.0, period_us=250_000.0,
                             duty=0.25)
        in_burst = sum(
            1 for a in arr if (a.t_us % 250_000.0) < 62_500.0)
        # A quarter of the time carries ~all the traffic at factor 4.
        assert in_burst > len(arr) * 0.7

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="duty"):
            burst_arrivals(10.0, 1e6, KINDS, rng, duty=1.5)
        with pytest.raises(ValueError, match="burst_factor"):
            burst_arrivals(10.0, 1e6, KINDS, rng, burst_factor=0.5)


class TestClosedLoop:
    def test_initial_is_one_per_client(self):
        proc = ClosedLoop(clients=5, kinds=KINDS, think_time_us=1000.0)
        arr = proc.initial(np.random.default_rng(0))
        assert len(arr) == 5

    def test_completion_feeds_back_within_horizon(self):
        proc = ClosedLoop(clients=1, kinds=KINDS,
                          think_time_us=0.0, horizon_us=100.0)
        rng = np.random.default_rng(0)
        nxt = proc.on_completion("a", now=50.0, rng=rng)
        assert nxt is not None and nxt.t_us == 50.0
        assert proc.on_completion("a", now=100.0, rng=rng) is None

    def test_zero_clients_rejected(self):
        with pytest.raises(ValueError, match="at least one client"):
            ClosedLoop(clients=0, kinds=KINDS).initial(
                np.random.default_rng(0))


class TestOpenLoop:
    def test_wraps_generator(self):
        proc = OpenLoop(lambda rng: poisson_arrivals(
            20.0, 1e6, KINDS, rng))
        arr = proc.initial(np.random.default_rng(5))
        assert arr
        assert proc.on_completion("a", 0.0,
                                  np.random.default_rng(5)) is None
