"""Placement policies over a small fleet."""

import pytest

from repro.gpusim import GpuFleet
from repro.gpusim.multi import FleetJob
from repro.serving import POLICIES, make_policy


def load(fleet, device, service_us=100.0, hbm=1000):
    fleet.admit(FleetJob(label="x", service_us=service_us,
                         hbm_bytes=hbm), device, 0.0)


class TestRegistry:
    def test_three_policies_ship(self):
        assert set(POLICIES) == {
            "round_robin", "least_loaded", "memory_aware"}

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("fifo")

    def test_instances_are_fresh(self):
        assert make_policy("round_robin") is not make_policy("round_robin")


class TestRoundRobin:
    def test_rotates_blindly(self):
        fleet = GpuFleet(3)
        load(fleet, 1)  # load is ignored
        pol = make_policy("round_robin")
        picks = [pol.select(fleet, 10, 0.0) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]
        assert pol.pins


class TestLeastLoaded:
    def test_prefers_idle_device(self):
        fleet = GpuFleet(2)
        load(fleet, 0)
        pol = make_policy("least_loaded")
        assert pol.select(fleet, 10, 0.0) == 1
        assert pol.pins

    def test_ignores_memory(self):
        fleet = GpuFleet(2, hbm_bytes=4096)
        load(fleet, 0, hbm=4000)
        load(fleet, 1, service_us=10.0)
        # Device 1 has less work, even though only device 0 is full.
        assert make_policy("least_loaded").select(
            fleet, 3000, 0.0) == 1


class TestMemoryAware:
    def test_filters_by_free_hbm(self):
        fleet = GpuFleet(2, hbm_bytes=4096)
        load(fleet, 0, service_us=10.0, hbm=4000)
        load(fleet, 1, service_us=500.0, hbm=100)
        # Device 0 is less loaded but full: the batch goes to device 1.
        assert make_policy("memory_aware").select(
            fleet, 3000, 0.0) == 1

    def test_returns_none_when_nothing_fits(self):
        fleet = GpuFleet(2, hbm_bytes=4096)
        load(fleet, 0, hbm=4000)
        load(fleet, 1, hbm=4000)
        pol = make_policy("memory_aware")
        assert pol.select(fleet, 3000, 0.0) is None
        assert not pol.pins
