"""Batching: size and deadline triggers, per-kind queues."""

from repro.serving import Batcher, BatchingPolicy
from repro.serving.batcher import Job


def make(max_batch=None, max_wait_us=100.0, ceiling=4):
    return Batcher(BatchingPolicy(max_batch=max_batch,
                                  max_wait_us=max_wait_us),
                   lambda kind: ceiling)


def job(jid, kind="a", t=0.0):
    return Job(jid=jid, kind=kind, arrival_us=t)


class TestSizeTrigger:
    def test_closes_at_ceiling(self):
        b = make(ceiling=3)
        assert b.add(job(0), 0.0) is None
        assert b.add(job(1), 1.0) is None
        batch = b.add(job(2), 2.0)
        assert batch is not None
        assert batch.size == 3 and batch.kind == "a"
        assert [j.jid for j in batch.jobs] == [0, 1, 2]
        assert b.depth == 0

    def test_policy_cap_overrides_class_ceiling(self):
        b = make(max_batch=2, ceiling=8)
        assert b.add(job(0), 0.0) is None
        assert b.add(job(1), 0.0) is not None

    def test_max_batch_one_disables_batching(self):
        b = make(max_batch=1)
        batch = b.add(job(0), 0.0)
        assert batch is not None and batch.size == 1

    def test_kinds_queue_separately(self):
        b = make(ceiling=2)
        assert b.add(job(0, "a"), 0.0) is None
        assert b.add(job(1, "b"), 0.0) is None
        assert b.depth == 2
        batch = b.add(job(2, "a"), 1.0)
        assert batch is not None and batch.kind == "a"
        assert b.depth == 1


class TestDeadlineTrigger:
    def test_flush_due_closes_expired_queues_only(self):
        b = make(max_wait_us=100.0)
        b.add(job(0, "a", t=0.0), 0.0)
        b.add(job(1, "b", t=80.0), 80.0)
        flushed = b.flush_due(100.0)
        assert [f.kind for f in flushed] == ["a"]
        assert b.depth == 1

    def test_stale_flush_is_noop(self):
        b = make(max_wait_us=100.0)
        b.add(job(0, t=50.0), 50.0)
        assert b.flush_due(60.0) == []

    def test_flush_all_drains_everything(self):
        b = make()
        b.add(job(0, "a"), 0.0)
        b.add(job(1, "b"), 0.0)
        flushed = b.flush_all(5.0)
        assert {f.kind for f in flushed} == {"a", "b"}
        assert b.depth == 0
        assert all(f.formed_us == 5.0 for f in flushed)


class TestJobLifetime:
    def test_latency_and_done(self):
        j = job(0, t=10.0)
        assert not j.done
        j.completion_us = 35.0
        assert j.done
        assert j.latency_us == 25.0
