"""Tests for the BFV scheme and the signed basis extension behind it."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bfv import BfvContext, BfvParams
from repro.numtheory import find_ntt_primes
from repro.numtheory.rns import RNSBasis, extend_basis_signed


@pytest.fixture(scope="module")
def ctx():
    return BfvContext(BfvParams.toy(), seed=5)


@pytest.fixture(scope="module")
def keys(ctx):
    return ctx.keygen()


def centered(values, t):
    out = [v % t for v in values]
    return [v - t if v > t // 2 else v for v in out]


class TestExtendBasisSigned:
    def test_positive_values_unchanged(self):
        import random

        primes = find_ntt_primes(5, 28, 256)
        source = RNSBasis(primes[:3])
        target = RNSBasis(primes[3:5])
        rnd = random.Random(0)
        # Small positive values (far below Q/2).
        xs = [rnd.randrange(source.product // 4) for _ in range(32)]
        stacked = np.stack([
            np.array([x % q for x in xs], dtype=np.uint64)
            for q in source.moduli
        ])
        out = extend_basis_signed(stacked, source, target)
        for j, t in enumerate(target.moduli):
            assert out[j].tolist() == [x % t for x in xs]

    def test_negative_values_centered(self):
        import random

        primes = find_ntt_primes(5, 28, 256)
        source = RNSBasis(primes[:3])
        target = RNSBasis(primes[3:5])
        rnd = random.Random(1)
        # Values just below Q represent small negatives.
        negs = [-rnd.randrange(1, source.product // 4) for _ in range(32)]
        stacked = np.stack([
            np.array([x % q for x in negs], dtype=np.uint64)
            for q in source.moduli
        ])
        out = extend_basis_signed(stacked, source, target)
        for j, t in enumerate(target.moduli):
            assert out[j].tolist() == [x % t for x in negs]


class TestBfvBasics:
    def test_delta_definition(self, ctx):
        assert ctx.delta == ctx.q_product // ctx.t

    def test_aux_basis_wide_enough(self, ctx):
        aux_product = 1
        for p in ctx._aux_moduli:
            aux_product *= p
        assert aux_product > ctx.params.n * ctx.q_product * ctx.t

    def test_roundtrip(self, ctx, keys):
        vals = [5, -7, 100, 0, 999]
        assert ctx.decrypt(ctx.encrypt(vals, keys), keys)[:5].tolist() \
            == vals

    @settings(max_examples=8, deadline=None)
    @given(st.lists(st.integers(min_value=-3000, max_value=3000),
                    min_size=1, max_size=8))
    def test_roundtrip_property(self, vals):
        ctx = BfvContext(BfvParams.toy(), seed=6)
        keys = ctx.keygen()
        ct = ctx.encrypt(vals, keys)
        assert ctx.decrypt(ct, keys)[: len(vals)].tolist() == vals


class TestBfvOps:
    A = [5, -7, 100, 0, 999]
    B = [3, 2, -50, 9, 4]

    def test_hadd(self, ctx, keys):
        ct = ctx.hadd(ctx.encrypt(self.A, keys), ctx.encrypt(self.B, keys))
        assert ctx.decrypt(ct, keys)[:5].tolist() == [
            x + y for x, y in zip(self.A, self.B)
        ]

    def test_hsub_and_negate(self, ctx, keys):
        ct = ctx.hsub(ctx.encrypt(self.A, keys), ctx.encrypt(self.B, keys))
        assert ctx.decrypt(ct, keys)[:5].tolist() == [
            x - y for x, y in zip(self.A, self.B)
        ]
        neg = ctx.negate(ctx.encrypt(self.A, keys))
        assert ctx.decrypt(neg, keys)[:5].tolist() == [-x for x in self.A]

    def test_add_plain(self, ctx, keys):
        ct = ctx.add_plain(ctx.encrypt(self.A, keys), [1, 2, 3, 4, 5])
        assert ctx.decrypt(ct, keys)[:5].tolist() == [
            x + c for x, c in zip(self.A, [1, 2, 3, 4, 5])
        ]

    def test_pmult_exact_mod_t(self, ctx, keys):
        ct = ctx.pmult(ctx.encrypt(self.A, keys), [2, 3, 4, 5, 6])
        expected = centered(
            [x * c for x, c in zip(self.A, [2, 3, 4, 5, 6])], ctx.t
        )
        assert ctx.decrypt(ct, keys)[:5].tolist() == expected

    def test_hmult_exact_mod_t(self, ctx, keys):
        ct = ctx.hmult(ctx.encrypt(self.A, keys),
                       ctx.encrypt(self.B, keys), keys)
        expected = centered(
            [x * y for x, y in zip(self.A, self.B)], ctx.t
        )
        assert ctx.decrypt(ct, keys)[:5].tolist() == expected

    def test_hmult_depth_two(self, ctx, keys):
        """Scale-invariance: no level management needed for depth 2."""
        ct_a = ctx.encrypt(self.A, keys)
        ct_b = ctx.encrypt(self.B, keys)
        ct = ctx.hmult(ctx.hmult(ct_a, ct_b, keys), ct_a, keys)
        expected = centered(
            [x * y * x for x, y in zip(self.A, self.B)], ctx.t
        )
        assert ctx.decrypt(ct, keys)[:5].tolist() == expected

    def test_mult_then_add_mixes(self, ctx, keys):
        ct_a = ctx.encrypt(self.A, keys)
        ct_b = ctx.encrypt(self.B, keys)
        ct = ctx.hadd(ctx.hmult(ct_a, ct_b, keys), ct_a)
        expected = centered(
            [x * y + x for x, y in zip(self.A, self.B)], ctx.t
        )
        assert ctx.decrypt(ct, keys)[:5].tolist() == expected


class TestSchemeAgreement:
    def test_bgv_and_bfv_agree(self):
        """Both exact schemes compute the same ring arithmetic."""
        from repro.bgv import BgvContext, BgvParams

        a = [11, -4, 250]
        b = [7, 13, -3]
        bgv = BgvContext(BgvParams.toy(), seed=8)
        bgv_keys = bgv.keygen()
        bfv = BfvContext(BfvParams.toy(), seed=8)
        bfv_keys = bfv.keygen()

        r_bgv = bgv.decrypt(
            bgv.hmult(bgv.encrypt(a, bgv_keys), bgv.encrypt(b, bgv_keys),
                      bgv_keys),
            bgv_keys,
        )[:3].tolist()
        r_bfv = bfv.decrypt(
            bfv.hmult(bfv.encrypt(a, bfv_keys), bfv.encrypt(b, bfv_keys),
                      bfv_keys),
            bfv_keys,
        )[:3].tolist()
        expected = [x * y for x, y in zip(a, b)]
        assert r_bgv == expected
        assert r_bfv == expected
