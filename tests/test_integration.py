"""Cross-package integration tests: the library working end to end."""

import numpy as np
import pytest

from repro.analysis import format_table, within_factor
from repro.ckks import CkksContext, ParameterSets
from repro.core import OperationScheduler, WarpDriveFramework
from repro.gpusim import aggregate
from repro.workloads import WorkloadSchedule


class TestFunctionalToPerformancePipeline:
    """The two layers working together: compute functionally on a toy
    ring, price the same operations at paper scale."""

    def test_same_op_names_functional_and_priced(self):
        ctx = CkksContext.create(ParameterSets.toy(), seed=1)
        keys = ctx.keygen(rotations=[1])
        sched = OperationScheduler(ParameterSets.set_c())

        vals = np.array([1.0, -2.0])
        ct = ctx.encrypt(vals, keys)
        # Functionally execute and simultaneously price each op.
        results = {}
        results["hadd"] = ctx.hadd(ct, ct)
        results["hmult"] = ctx.hmult(ct, ct, keys)
        results["hrotate"] = ctx.hrotate(ct, 1, keys)
        latencies = {op: sched.latency_us(op) for op in results}
        # All functional results decrypt sensibly...
        assert np.max(np.abs(
            ctx.decrypt_decode_real(results["hadd"], keys)[:2] - 2 * vals
        )) < 1e-3
        # ...and the priced ordering matches intuition.
        assert latencies["hmult"] > latencies["hrotate"] \
            > latencies["hadd"]

    def test_framework_bridges_both_layers(self):
        fw = WarpDriveFramework(ParameterSets.toy())
        ctx = fw.context(seed=2)
        keys = ctx.keygen()
        ct = ctx.encrypt([3.0], keys)
        out = ctx.hmult(ct, ct, keys)
        assert abs(
            ctx.decrypt_decode_real(out, keys)[0] - 9.0
        ) < 1e-2
        # The same framework prices ops at this (toy) geometry.
        assert fw.op_latency_us("hmult") > 0


class TestScheduleToReportPipeline:
    def test_custom_schedule_prices_and_formats(self):
        sched = OperationScheduler(ParameterSets.set_c())
        workload = (
            WorkloadSchedule("custom")
            .add("hmult", 10, 3)
            .add("hrotate", 10, 5, hoisted=True)
            .add("hadd", 10, 8)
        )
        timing = workload.price(sched, batch=2)
        table = format_table(
            ["item", "us"],
            [[k, round(v, 1)] for k, v in timing.breakdown.items()],
            title="custom workload",
        )
        assert "hmult" in table
        assert timing.total_us > 0
        assert timing.amortized_ms == pytest.approx(
            timing.total_ms / 2
        )

    def test_simulated_profiles_aggregate(self):
        sched = OperationScheduler(ParameterSets.set_c())
        result = sched.simulate("keyswitch")
        agg = aggregate(result.profiles)
        assert agg.kernel_count == 11
        assert agg.total_us == pytest.approx(result.elapsed_us, rel=0.01)


class TestCrossSchemeSubstrateSharing:
    """CKKS, BGV and BFV all run on the same NTT tables and RNS code."""

    def test_three_schemes_share_the_ntt(self):
        from repro.bfv import BfvContext, BfvParams
        from repro.bgv import BgvContext, BgvParams
        from repro.ntt.tables import get_tables

        ckks = CkksContext.create(ParameterSets.toy(), seed=3)
        bgv = BgvContext(BgvParams.toy(), seed=3)
        bfv = BfvContext(BfvParams.toy(), seed=3)

        # Identical N, all tables served by the same cache.
        assert ckks.params.n == bgv.params.n == bfv.params.n
        q = ckks.evaluator.q_moduli[0]
        assert get_tables(q, 64) is get_tables(q, 64)

        # Each scheme round-trips on its own terms.
        ck = ckks.keygen()
        assert abs(ckks.decrypt_decode_real(
            ckks.encrypt([1.5], ck), ck
        )[0] - 1.5) < 1e-4
        bk = bgv.keygen()
        assert bgv.decrypt(bgv.encrypt([7], bk), bk)[0] == 7
        fk = bfv.keygen()
        assert bfv.decrypt(bfv.encrypt([7], fk), fk)[0] == 7


class TestPaperShapeSummary:
    """One assertion per headline claim, as a cheap integration smoke."""

    def test_headlines(self):
        from repro.baselines import TensorFheNtt
        from repro.core import WarpDriveNtt

        n = 2**13
        wd = WarpDriveNtt(n).throughput_kops(512)
        tf = TensorFheNtt(n).throughput_kops(512)
        assert wd / tf > 5                    # Table VII
        assert within_factor(wd, 9351, 4)     # vs paper SET-B within 4x
        sched = OperationScheduler(ParameterSets.set_c())
        assert sched.kernel_count("keyswitch") == 11  # Table IX
