"""Tests for operation lowering, PE kernels and the framework facade."""

import pytest

from repro.ckks import ParameterSets
from repro.core import (
    HOMOMORPHIC_OPS,
    MemoryPool,
    OperationScheduler,
    PeKeySwitchPlan,
    WarpDriveFramework,
    max_working_set_bytes,
)

PARAMS = ParameterSets.set_c()


@pytest.fixture(scope="module")
def sched():
    return OperationScheduler(PARAMS)


class TestPeKeySwitch:
    def test_eleven_kernels_at_every_level(self, sched):
        """Table IX: WarpDrive KeySwitch is always 11 kernels."""
        for level in (2, PARAMS.max_level // 2, PARAMS.max_level):
            assert sched.kernel_count("keyswitch", level=level) == 11

    def test_eleven_kernels_at_every_set(self):
        for name in ("SET-C", "SET-D", "SET-E"):
            s = OperationScheduler(ParameterSets.by_name(name))
            assert s.kernel_count("keyswitch") == PeKeySwitchPlan.KERNEL_COUNT

    def test_level_out_of_range(self, sched):
        with pytest.raises(ValueError):
            PeKeySwitchPlan(PARAMS, 99, ntt=sched.ntt)

    def test_active_digits_shrink_with_level(self, sched):
        full = PeKeySwitchPlan(PARAMS, PARAMS.max_level, ntt=sched.ntt)
        low = PeKeySwitchPlan(PARAMS, 0, ntt=sched.ntt)
        assert low.active_digits <= full.active_digits
        assert low.active_digits >= 1


class TestOperationPlans:
    def test_all_ops_have_plans(self, sched):
        for op in HOMOMORPHIC_OPS:
            plan = sched.plan(op)
            assert len(plan) >= 1

    def test_unknown_op(self, sched):
        with pytest.raises(ValueError):
            sched.plan("hdivide")

    def test_hadd_is_one_kernel(self, sched):
        assert sched.kernel_count("hadd") == 1

    def test_hmult_includes_keyswitch_and_rescale(self, sched):
        names = [k.name for k in sched.plan("hmult")]
        assert any("ks." in n for n in names)
        assert any("rescale" in n for n in names)

    def test_latency_ordering(self, sched):
        """HMULT > HROTATE > RESCALE > HADD (Table VIII ordering)."""
        hmult = sched.latency_us("hmult")
        hrot = sched.latency_us("hrotate")
        resc = sched.latency_us("rescale")
        hadd = sched.latency_us("hadd")
        assert hmult > hrot > resc > hadd

    def test_lower_level_is_faster(self, sched):
        assert (
            sched.latency_us("hmult", level=2)
            < sched.latency_us("hmult", level=PARAMS.max_level)
        )

    def test_batching_improves_amortized_latency(self, sched):
        assert (
            sched.latency_us("hmult", batch=16)
            < sched.latency_us("hmult", batch=1)
        )

    def test_profile_fields(self, sched):
        prof = sched.profile("keyswitch")
        assert prof["kernels"] == 11
        assert 0 < prof["compute_util"] <= 100
        assert 0 < prof["memory_util"] <= 100


class TestMemoryPool:
    def test_s_max_formula(self):
        p = ParameterSets.toy()
        expected = (
            p.max_level * p.n * p.dnum
            * (p.max_level + p.num_special) * 1 * 4
        )
        assert max_working_set_bytes(p) == expected

    def test_pool_capped_by_available(self):
        pool = MemoryPool.for_params(
            ParameterSets.set_e(), available_bytes=1 << 20
        )
        assert pool.capacity == 1 << 20

    def test_allocate_and_reset(self):
        pool = MemoryPool(4096)
        a = pool.allocate(100, "a")
        b = pool.allocate(200, "b")
        assert b.offset >= a.size
        assert pool.in_use > 0
        pool.reset()
        assert pool.in_use == 0
        assert pool.stats["resets"] == 1

    def test_exhaustion(self):
        pool = MemoryPool(1024)
        with pytest.raises(MemoryError):
            pool.allocate(2048)

    def test_release_oldest_frees_its_bytes(self):
        # FIFO completion order — the serving fleet's only order — must
        # return memory immediately, not only when the pool drains.
        pool = MemoryPool(4096)
        a = pool.allocate(256, "a")
        pool.allocate(256, "b")
        pool.allocate(256, "c")
        before = pool.in_use
        pool.release(a)
        assert pool.in_use == before - a.size
        assert pool.fits(3328)  # all remaining capacity is allocatable

    def test_fifo_stream_never_ratchets(self):
        # A bounded pool sustains an unbounded stream of allocate /
        # release-oldest pairs (the admission-ledger steady state).
        pool = MemoryPool(1024)
        live = [pool.allocate(256) for _ in range(4)]
        for _ in range(64):
            pool.release(live.pop(0))
            live.append(pool.allocate(256))
        assert pool.in_use == 4 * 256

    def test_freed_gap_is_reused(self):
        pool = MemoryPool(1024)
        a = pool.allocate(256, "a")
        pool.allocate(256, "b")
        pool.release(a)
        c = pool.allocate(256, "c")
        assert c.offset == 0  # first fit lands in the freed gap

    def test_release_non_live_rejected(self):
        pool = MemoryPool(1024)
        a = pool.allocate(100, "a")
        pool.release(a)
        with pytest.raises(ValueError, match="not live"):
            pool.release(a)

    def test_alignment(self):
        pool = MemoryPool(4096)
        a = pool.allocate(1)
        assert a.size == 256

    def test_bad_sizes(self):
        with pytest.raises(ValueError):
            MemoryPool(0)
        with pytest.raises(ValueError):
            MemoryPool(1024).allocate(0)


class TestFramework:
    @pytest.fixture(scope="class")
    def fw(self):
        return WarpDriveFramework(ParameterSets.set_c())

    def test_describe_mentions_key_facts(self, fw):
        text = fw.describe()
        assert "SET-C" in text
        assert "wd-fuse" in text
        assert "256" in text

    def test_threads_per_block_rule(self, fw):
        # T = C * W * 32 = 4 * 2 * 32 = 256 on the A100.
        assert fw.geometry.threads_per_block == 256

    def test_dual_kernel_flag(self):
        assert WarpDriveFramework(ParameterSets.set_e()).config.dual_kernel_ntt
        assert not WarpDriveFramework(
            ParameterSets.set_c()
        ).config.dual_kernel_ntt

    def test_op_latency(self, fw):
        assert fw.op_latency_us("hadd") < fw.op_latency_us("hmult")

    def test_ntt_throughput(self, fw):
        assert fw.ntt_throughput_kops(256) > 0

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            WarpDriveFramework(ParameterSets.set_c(), ntt_variant="bogus")

    def test_supported_ops(self):
        assert "hmult" in WarpDriveFramework.supported_ops()

    def test_functional_context_roundtrip(self):
        import numpy as np

        fw = WarpDriveFramework(ParameterSets.toy())
        ctx = fw.context(seed=3)
        keys = ctx.keygen()
        ct = ctx.encrypt([1.0, -2.0], keys)
        dec = ctx.decrypt_decode_real(ct, keys)
        assert np.max(np.abs(dec[:2] - [1.0, -2.0])) < 1e-3
