"""Tests for the instruction-cost model and plan-derived work counts."""

import pytest

from repro.core import costs, plan_work_counts
from repro.ntt import build_plan


class TestPlanWorkCounts:
    def test_matches_table_iv_level2(self):
        """The 2-level plan for N=2^16 must reproduce Table IV's row."""
        counts = plan_work_counts(build_plan(65536))
        assert counts.ew_mul == 2**22
        assert counts.mod_mul == 3 * 2**16
        assert counts.mod_red == 4 * 2**16
        assert counts.bit_dec_mer == 3 * 2**17

    def test_matches_table_iv_level1(self):
        """A (256 x 256) plan reproduces the 1-level row."""
        from repro.ntt.decompose import NttPlan

        plan = NttPlan(65536, left=NttPlan(256), right=NttPlan(256))
        counts = plan_work_counts(plan)
        assert counts.ew_mul == 2**25
        assert counts.mod_mul == 2**16
        assert counts.bit_dec_mer == 2**17

    def test_unbalanced_plan(self):
        counts = plan_work_counts(build_plan(4096))
        # leaves 16,16,16: ew = 4096 * 48
        assert counts.ew_mul == 4096 * 48
        assert counts.leaf_steps == 3

    def test_tensor_macs_is_16x(self):
        counts = plan_work_counts(build_plan(4096))
        assert counts.tensor_macs == 16 * counts.ew_mul

    def test_butterfly_count(self):
        counts = plan_work_counts(build_plan(1024))
        assert counts.butterfly_count == 512 * 10

    def test_support_ops_include_bit_path(self):
        counts = plan_work_counts(build_plan(4096))
        with_bits = counts.support_ops(include_bit_ops=True)
        without = counts.support_ops(include_bit_ops=False)
        assert with_bits > without


class TestConstants:
    def test_montgomery_cheaper_than_barrett(self):
        """§IV-A-4: Montgomery ~10% faster than Barrett."""
        assert costs.MONTGOMERY_MULMOD_OPS < costs.BARRETT_MULMOD_OPS

    def test_limb_gemm_count(self):
        assert costs.LIMB_GEMMS == 16
