"""Tests for the kernel builders' operation accounting."""

import pytest

from repro.core import costs
from repro.core import kernels as K
from repro.core.kernels import GeometryConfig


class TestGeometry:
    def test_default_follows_paper(self):
        geo = K.DEFAULT_GEOMETRY
        assert geo.threads_per_block == 256
        assert geo.warps_per_block == 8
        assert geo.ntt_coeffs_per_thread == 8

    def test_blocks_for(self):
        geo = GeometryConfig(threads_per_block=256)
        assert geo.blocks_for(256) == 1
        assert geo.blocks_for(257) == 2
        assert geo.blocks_for(2048, per_thread=8) == 1
        assert geo.blocks_for(0) == 1  # at least one block

    def test_custom_thread_counts(self):
        geo = GeometryConfig(threads_per_block=64)
        assert geo.warps_per_block == 2


class TestElementwiseBuilders:
    def test_modmul_cost_accounting(self):
        k = K.modmul_kernel("m", 1000)
        assert k.int32_ops == 1000 * costs.BARRETT_MULMOD_OPS
        assert k.gmem_read_bytes == 2 * 1000 * K.WORD_BYTES
        assert k.gmem_write_bytes == 1000 * K.WORD_BYTES

    def test_modadd_cheaper_than_modmul(self):
        add = K.modadd_kernel("a", 1000)
        mul = K.modmul_kernel("m", 1000)
        assert add.int32_ops < mul.int32_ops

    def test_default_efficiency_applied(self):
        assert K.modadd_kernel("a", 10).efficiency == \
            K.DEFAULT_KERNEL_EFFICIENCY

    def test_tags_threaded_through(self):
        k = K.modmul_kernel("m", 10, stage="demo")
        assert k.tags["stage"] == "demo"
        assert k.tags["kind"] == "elementwise"


class TestConversionBuilders:
    def test_modup_work_scales_with_bases(self):
        small = K.modup_kernel("u", 1024, 2, 6)
        big = K.modup_kernel("u", 1024, 4, 12)
        assert big.int32_ops > small.int32_ops
        assert big.gmem_write_bytes > small.gmem_write_bytes

    def test_modup_polys_multiply_work(self):
        one = K.modup_kernel("u", 1024, 2, 6, polys=1)
        four = K.modup_kernel("u", 1024, 2, 6, polys=4)
        assert four.int32_ops == pytest.approx(4 * one.int32_ops)

    def test_moddown_reads_concatenated_basis(self):
        k = K.moddown_kernel("d", 1024, main_primes=10, special_primes=2)
        assert k.gmem_read_bytes == 1024 * 12 * K.WORD_BYTES
        assert k.gmem_write_bytes == 1024 * 10 * K.WORD_BYTES

    def test_inner_product_reads_dominate(self):
        """Table III: InProd is the memory-heavy kernel — its evk reads
        are several times the output writes."""
        k = K.inner_product_kernel("i", 1024, primes=16, digits=4)
        assert k.gmem_read_bytes > 5 * k.gmem_write_bytes

    def test_automorphism_coalescing_penalty(self):
        k = K.automorphism_kernel("r", 1024, primes=4)
        assert k.coalescing < 1.0
