"""Tests for tensor/CUDA warp allocation and work balancing."""

import pytest

from repro.core import balance_fraction, default_allocation, fused_times
from repro.gpusim import A100_PCIE_80G, V100

DEV = A100_PCIE_80G


class TestDefaultAllocation:
    def test_four_plus_four(self):
        alloc = default_allocation(DEV)
        assert alloc.tensor_warps == 4
        assert alloc.cuda_warps == 4
        assert alloc.warps_per_block == 8

    def test_covers_all_subpartitions(self):
        alloc = default_allocation(DEV)
        assert alloc.tensor_warps == DEV.subpartitions_per_sm


class TestBalanceFraction:
    def test_no_tensor_cores_means_zero(self):
        assert balance_fraction(
            V100, tensor_macs_per_unit=100, cuda_ops_per_unit=100
        ) == 0.0

    def test_fraction_in_unit_interval(self):
        f = balance_fraction(
            DEV, tensor_macs_per_unit=2**26, cuda_ops_per_unit=3 * 10**6
        )
        assert 0.0 <= f <= 1.0

    def test_balances_pipe_times(self):
        tm, co = 2**26, 3 * 10**6
        f = balance_fraction(DEV, tensor_macs_per_unit=tm,
                             cuda_ops_per_unit=co)
        t_tensor = f * tm / DEV.tensor_macs_per_cycle
        t_cuda = (1 - f) * co / DEV.int32_ops_per_cycle
        assert t_tensor == pytest.approx(t_cuda, rel=1e-6)

    def test_heavy_fixed_cuda_work_pushes_to_tensor(self):
        f = balance_fraction(
            DEV, tensor_macs_per_unit=1000, cuda_ops_per_unit=1000,
            cuda_fixed_ops=10**9,
        )
        assert f == 1.0


class TestFusedTimes:
    def test_fused_never_worse_than_best_single(self):
        """The §IV-B headline: concurrent use beats any single pipe."""
        times = fused_times(
            DEV, 0.6, tensor_macs=2**30, cuda_gemm_ops=10**8,
            cuda_fixed_ops=10**6,
        )
        f_opt = balance_fraction(
            DEV, tensor_macs_per_unit=2**30, cuda_ops_per_unit=10**8,
            cuda_fixed_ops=10**6,
        )
        best = fused_times(
            DEV, f_opt, tensor_macs=2**30, cuda_gemm_ops=10**8,
            cuda_fixed_ops=10**6,
        )
        assert best["fused"] <= times["tensor_only"] + 1e-9
        assert best["fused"] <= times["cuda_only"] + 1e-9

    def test_keys_present(self):
        times = fused_times(DEV, 0.5, tensor_macs=1e6, cuda_gemm_ops=1e6,
                            cuda_fixed_ops=0)
        for key in ("tensor", "cuda", "fused", "tensor_only", "cuda_only"):
            assert key in times
