"""Tests for WarpDrive-NTT: functional correctness and the Fig. 6 claims."""

import numpy as np
import pytest

from repro.core import VARIANTS, WarpDriveNtt
from repro.gpusim import A100_PCIE_80G, V100
from repro.ntt import NttTables, negacyclic_ntt
from repro.numtheory import find_ntt_prime

N = 256
Q = find_ntt_prime(28, N)
TABLES = NttTables(Q, N)
RNG = np.random.default_rng(0)


class TestFunctionalEquivalence:
    """All five variants compute the same transform, bit-exactly."""

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_forward_matches_radix2(self, variant):
        engine = WarpDriveNtt(N, variant=variant)
        x = RNG.integers(0, Q, size=N, dtype=np.uint64)
        assert np.array_equal(
            engine.forward(x, TABLES), negacyclic_ntt(x, TABLES)
        )

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_roundtrip(self, variant):
        engine = WarpDriveNtt(N, variant=variant)
        x = RNG.integers(0, Q, size=(3, N), dtype=np.uint64)
        assert np.array_equal(engine.inverse(engine.forward(x, TABLES),
                                             TABLES), x)

    def test_karatsuba_variant_identical(self):
        a = WarpDriveNtt(N, variant="wd-tensor")
        b = WarpDriveNtt(N, variant="wd-tensor", use_karatsuba=True)
        x = RNG.integers(0, Q, size=N, dtype=np.uint64)
        assert np.array_equal(a.forward(x, TABLES), b.forward(x, TABLES))

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            WarpDriveNtt(N, variant="wd-quantum")


class TestKernelPlans:
    def test_single_kernel_below_smem_limit(self):
        assert not WarpDriveNtt(2**15).uses_dual_kernel
        assert len(WarpDriveNtt(2**15).kernel_plan(16)) == 1

    def test_dual_kernel_at_2_16(self):
        """§IV-D-2: N*w > S_shared forces the dual-kernel form."""
        assert WarpDriveNtt(2**16).uses_dual_kernel
        assert len(WarpDriveNtt(2**16).kernel_plan(16)) == 2

    def test_batch_scales_work(self):
        e = WarpDriveNtt(2**14)
        k1 = e.kernel_plan(1)[0]
        k8 = e.kernel_plan(8)[0]
        assert k8.int32_ops == pytest.approx(8 * k1.int32_ops)
        assert k8.gmem_read_bytes == pytest.approx(8 * k1.gmem_read_bytes)

    def test_bad_batch(self):
        with pytest.raises(ValueError):
            WarpDriveNtt(2**14).kernel_plan(0)

    def test_tensor_variant_uses_tensor_cores(self):
        k = WarpDriveNtt(2**14, variant="wd-tensor").kernel_plan(1)[0]
        assert k.tensor_macs > 0

    def test_cuda_variants_avoid_tensor_cores(self):
        for v in ("wd-cuda", "wd-bo"):
            k = WarpDriveNtt(2**14, variant=v).kernel_plan(1)[0]
            assert k.tensor_macs == 0

    def test_cuda_variant_runs_on_v100(self):
        """WD-BO/WD-CUDA work on tensor-less devices (generality §VI-B)."""
        e = WarpDriveNtt(2**14, variant="wd-bo", device=V100)
        assert e.throughput_kops(64) > 0

    def test_warp_allocation_is_4_plus_4(self):
        """Fig. 3: fused kernels pair 4 tensor with 4 CUDA warps."""
        k = WarpDriveNtt(2**14, variant="wd-fuse").kernel_plan(1)[0]
        assert k.warps_per_block == 8


class TestFig6Ordering:
    """The concurrency claims of §V-D, at the paper's batch size."""

    @pytest.fixture(scope="class")
    def kops(self):
        return {
            n: {
                v: WarpDriveNtt(n, variant=v).throughput_kops(1024)
                for v in VARIANTS
            }
            for n in (2**12, 2**14, 2**16)
        }

    def test_fuse_beats_every_single_pipe_variant(self, kops):
        for n, row in kops.items():
            assert row["wd-fuse"] > row["wd-tensor"]
            assert row["wd-fuse"] > row["wd-bo"]
            assert row["wd-fuse"] > row["wd-cuda"]

    def test_fuse_gain_is_single_digit_percent(self, kops):
        """Paper: WD-FUSE beats WD-Tensor by 4% to 7%."""
        for n, row in kops.items():
            gain = row["wd-fuse"] / row["wd-tensor"] - 1
            assert 0.02 < gain < 0.12

    def test_tensor_beats_bo(self, kops):
        """Paper: 4-10% advantage over WD-BO."""
        for n, row in kops.items():
            assert row["wd-tensor"] > row["wd-bo"]

    def test_tensor_beats_cuda(self, kops):
        for n, row in kops.items():
            assert row["wd-tensor"] > row["wd-cuda"]

    def test_ftc_between_cuda_and_tensor(self, kops):
        for n, row in kops.items():
            assert row["wd-cuda"] < row["wd-ftc"] < row["wd-tensor"]


class TestThroughputScaling:
    def test_throughput_decreases_with_n(self):
        ks = [WarpDriveNtt(1 << b).throughput_kops(512)
              for b in (12, 14, 16)]
        assert ks[0] > ks[1] > ks[2]

    def test_batching_amortizes_launch_overhead(self):
        e = WarpDriveNtt(2**13)
        assert e.throughput_kops(1024) > e.throughput_kops(1)

    def test_latency_positive(self):
        assert WarpDriveNtt(2**12).latency_us() > 0
