"""Differential fuzzing: random CKKS circuits vs a plaintext interpreter.

Generates random operation sequences (add, sub, negate, scalar ops,
plaintext products, ciphertext products, rotations) and executes each
twice: homomorphically on a toy ring, and directly on a numpy vector.
Decrypted results must track the plaintext run within the accumulated
noise budget. This is the strongest single correctness check in the
suite — any systematic bug in scale/level bookkeeping or in an operation
surfaces here.
"""

import numpy as np
import pytest

from repro.ckks import CkksContext, CkksParams

SLOT_MAG = 0.8  # keep messages well inside the precision budget
DEPTH_BUDGET = 4  # multiplicative levels a random circuit may spend


@pytest.fixture(scope="module")
def ctx():
    params = CkksParams(n=64, max_level=8, num_special=2, dnum=9,
                        scale_bits=26, name="fuzz-toy")
    return CkksContext.create(params, seed=99)


@pytest.fixture(scope="module")
def keys(ctx):
    return ctx.keygen(rotations=[1, 2, 4, 8, 16])


class CircuitRunner:
    """Executes the same random op stream on (ciphertext, numpy) pairs."""

    def __init__(self, ctx, keys, rng):
        self.ctx = ctx
        self.keys = keys
        self.rng = rng
        self.ev = ctx.evaluator

    def fresh_pair(self):
        vals = self.rng.uniform(-SLOT_MAG, SLOT_MAG, self.ctx.slots)
        return self.ctx.encrypt(vals, self.keys), vals

    def run(self, num_ops: int):
        ct, ref = self.fresh_pair()
        mults_used = 0
        ops_log = []
        for _ in range(num_ops):
            op = self.rng.choice(
                ["add_ct", "sub_ct", "negate", "add_scalar",
                 "pmult_scalar", "pmult_vec", "rotate", "hmult"]
            )
            if op == "hmult" and (
                mults_used >= DEPTH_BUDGET or ct.level < 2
            ):
                op = "add_scalar"
            ops_log.append(op)
            if op in ("add_ct", "sub_ct"):
                other_ct, other_ref = self.fresh_pair()
                other_ct = self.ev.level_down(
                    other_ct, min(ct.level, other_ct.level)
                )
                ct2 = self.ev.level_down(ct, other_ct.level)
                if op == "add_ct":
                    ct, ref = self.ev.hadd_matched(ct2, other_ct), \
                        ref + other_ref
                else:
                    ct, ref = self.ev.hsub_matched(ct2, other_ct), \
                        ref - other_ref
            elif op == "negate":
                ct, ref = self.ev.negate(ct), -ref
            elif op == "add_scalar":
                c = float(self.rng.uniform(-0.5, 0.5))
                ct, ref = self.ev.add_scalar(ct, c), ref + c
            elif op == "pmult_scalar":
                c = float(self.rng.uniform(-0.9, 0.9))
                ct = self.ev.rescale(self.ev.pmult_scalar(ct, c))
                ref = ref * c
            elif op == "pmult_vec":
                vec = self.rng.uniform(-0.9, 0.9, self.ctx.slots)
                pt = self.ctx.encode(vec, level=ct.level)
                ct = self.ev.rescale(self.ev.pmult(ct, pt))
                ref = ref * vec
            elif op == "rotate":
                step = int(self.rng.choice([1, 2, 4, 8, 16]))
                ct, ref = self.ev.hrotate(ct, step, self.keys), \
                    np.roll(ref, -step)
            elif op == "hmult":
                # Square (bounded magnitude keeps precision sane).
                ct = self.ev.hmult(ct, ct, self.keys)
                ref = ref * ref
                mults_used += 1
            # Keep the reference bounded so relative noise stays readable.
            if np.max(np.abs(ref)) > 4.0:
                ct = self.ev.rescale(self.ev.pmult_scalar(ct, 0.25))
                ref = ref * 0.25
        return ct, ref, ops_log


@pytest.mark.parametrize("seed", range(6))
def test_random_circuit_matches_plaintext(ctx, keys, seed):
    rng = np.random.default_rng(1000 + seed)
    runner = CircuitRunner(ctx, keys, rng)
    ct, ref, ops_log = runner.run(num_ops=10)
    got = ctx.decrypt_decode_real(ct, keys)
    err = float(np.max(np.abs(got - ref)))
    assert err < 3e-2, f"seed {seed}: err {err:.2e}, ops {ops_log}"


def test_long_shallow_circuit(ctx, keys):
    """Many additive ops accumulate only additive noise."""
    rng = np.random.default_rng(77)
    ev = ctx.evaluator
    ct, ref = CircuitRunner(ctx, keys, rng).fresh_pair()
    for i in range(25):
        c = float(rng.uniform(-0.2, 0.2))
        ct, ref = ev.add_scalar(ct, c), ref + c
        if i % 5 == 0:
            ct, ref = ev.negate(ct), -ref
    got = ctx.decrypt_decode_real(ct, keys)
    assert np.max(np.abs(got - ref)) < 1e-3
