"""Tests of hybrid key-switching internals and key generation."""

import numpy as np
import pytest

from repro.ckks import (
    CkksContext,
    CkksParams,
    KeyGenerator,
    ParameterSets,
    keyswitch,
)
from repro.ckks.poly import EVAL, RnsPoly


@pytest.fixture(scope="module")
def ctx():
    return CkksContext.create(ParameterSets.toy(), seed=11)


@pytest.fixture(scope="module")
def keys(ctx):
    return ctx.keygen(rotations=[1])


class TestKeyGeneration:
    def test_secret_is_ternary(self, keys):
        assert set(np.unique(keys.secret.coeffs)).issubset({-1, 0, 1})

    def test_sparse_secret(self):
        params = CkksParams(n=64, max_level=3, num_special=2, dnum=2,
                            secret_hamming_weight=8)
        gen = KeyGenerator(params, np.random.default_rng(0))
        sk = gen.generate_secret()
        assert np.count_nonzero(sk.coeffs) == 8

    def test_public_key_is_valid_rlwe(self, ctx, keys):
        """b + a*s must be small (it is the error polynomial)."""
        ev = ctx.evaluator
        s = keys.secret.poly.take_primes(range(len(ev.q_moduli)))
        noise = (keys.public.b + keys.public.a * s).to_coeff()
        from repro.numtheory import CRTReconstructor

        crt = CRTReconstructor(list(ev.q_moduli))
        coeffs = crt.reconstruct_array(noise.data, signed=True)
        assert max(abs(c) for c in coeffs) < 64  # ~ 6 sigma of 3.2

    def test_relin_key_digit_count(self, ctx, keys):
        assert keys.relin.dnum == ctx.params.dnum

    def test_noise_guard_rejects_thin_special_primes(self):
        # One 31-bit special prime cannot cover two-prime digits.
        params = CkksParams(n=64, max_level=3, num_special=1, dnum=2)
        gen = KeyGenerator(params, np.random.default_rng(0))
        sk = gen.generate_secret()
        with pytest.raises(ValueError):
            gen.generate_relin(sk)


class TestKeyswitchPrimitive:
    def test_switch_preserves_product_with_source_key(self, ctx, keys):
        """keyswitch(d, ksk(s')) yields (k0, k1) with k0 + k1*s = d*s'."""
        ev = ctx.evaluator
        rng = np.random.default_rng(1)
        n = ctx.params.n
        level_moduli = ev.q_moduli
        from repro.numtheory.rns import RNSBasis

        d = RnsPoly(
            RNSBasis(level_moduli).random(n, rng), level_moduli, EVAL
        )
        ks0, ks1 = keyswitch(d, keys.relin, ev.p_moduli)
        s = keys.secret.poly.take_primes(range(len(level_moduli)))
        s_sq = s * s
        got = (ks0 + ks1 * s).to_coeff()
        expected = (d * s_sq).to_coeff()
        diff = (got - expected).data
        # Difference is key-switching noise: small relative to q.
        from repro.numtheory import CRTReconstructor

        crt = CRTReconstructor(list(level_moduli))
        coeffs = crt.reconstruct_array(diff, signed=True)
        q_total = 1
        for q in level_moduli:
            q_total *= q
        assert max(abs(c) for c in coeffs) < q_total / 2**40

    def test_requires_eval_domain(self, ctx, keys):
        d = RnsPoly.zero(ctx.evaluator.q_moduli, ctx.params.n)
        with pytest.raises(ValueError):
            keyswitch(d, keys.relin, ctx.evaluator.p_moduli)

    def test_works_at_lower_level(self, ctx, keys):
        """Digits whose primes are gone at low level are skipped."""
        ev = ctx.evaluator
        rng = np.random.default_rng(2)
        level_moduli = ev.q_moduli[:2]  # level 1
        from repro.numtheory.rns import RNSBasis

        d = RnsPoly(
            RNSBasis(level_moduli).random(ctx.params.n, rng),
            level_moduli, EVAL,
        )
        ks0, ks1 = keyswitch(d, keys.relin, ev.p_moduli)
        assert ks0.moduli == level_moduli
        s = keys.secret.poly.take_primes(range(2))
        got = (ks0 + ks1 * s).to_coeff()
        expected = (d * (s * s)).to_coeff()
        from repro.numtheory import CRTReconstructor

        crt = CRTReconstructor(list(level_moduli))
        diff = crt.reconstruct_array((got - expected).data, signed=True)
        q_total = level_moduli[0] * level_moduli[1]
        assert max(abs(c) for c in diff) < q_total / 2**20
