"""Property suite: the digit-batched key-switch pipeline is bit-exact.

:func:`repro.ckks.keyswitch` (fused digits) and
:func:`repro.ckks.hoisted_rotations` (fused digits *and* steps) must
reproduce their preserved per-digit/per-step reference implementations
bit-for-bit — across levels (including digit-skipping low levels), dnum
values, and both ModDown branches — and the batched pipeline's working
set must fit the paper's ``S_max`` pool budget.
"""

import numpy as np
import pytest

from repro.ckks import (
    CkksContext,
    CkksParams,
    ParameterSets,
    hoisted_rotations,
    hoisted_rotations_looped,
    keyswitch,
    keyswitch_looped,
)
from repro.ckks.poly import COEFF, EVAL, RnsPoly
from repro.core.memory_pool import MemoryPool, max_working_set_bytes
from repro.numtheory.rns import RNSBasis

#: num_special=2 and scale_bits=26 keep the special-prime product above
#: every digit product (the Han-Ki noise guard); max_level is the largest
#: each dnum supports under that guard with 31-bit special primes.
DNUM_PARAMS = {
    1: CkksParams(n=64, max_level=1, num_special=2, dnum=1, scale_bits=26),
    3: CkksParams(n=64, max_level=5, num_special=2, dnum=3, scale_bits=26),
    7: CkksParams(n=64, max_level=6, num_special=2, dnum=7, scale_bits=26),
}


def _assert_pair_equal(ref, got, msg):
    for r, g, part in zip(ref, got, ("ks0", "ks1")):
        assert np.array_equal(r.data, g.data), f"{msg} ({part})"
        assert r.moduli == g.moduli and r.domain == g.domain


def _random_eval_poly(moduli, n, rng):
    return RnsPoly(RNSBasis(moduli).random(n, rng), moduli, EVAL)


class TestBatchedKeyswitchBitExact:
    @pytest.mark.parametrize("dnum", sorted(DNUM_PARAMS))
    def test_matches_looped_at_every_level(self, dnum):
        """Batched == looped at every level, including low levels where
        trailing digits drop out entirely."""
        params = DNUM_PARAMS[dnum]
        ctx = CkksContext.create(params, seed=dnum)
        keys = ctx.keygen()
        ev = ctx.evaluator
        for num_level in range(1, params.max_level + 2):
            moduli = ev.q_moduli[:num_level]
            for seed in range(5):
                rng = np.random.default_rng(1000 * dnum + 10 * num_level
                                            + seed)
                d = _random_eval_poly(moduli, params.n, rng)
                _assert_pair_equal(
                    keyswitch_looped(d, keys.relin, ev.p_moduli),
                    keyswitch(d, keys.relin, ev.p_moduli),
                    f"dnum={dnum} num_level={num_level} seed={seed}",
                )

    @pytest.mark.parametrize("plain_modulus", [None, 65537])
    def test_both_mod_down_branches(self, plain_modulus):
        """CKKS flooring ModDown and the BGV/BFV t-preserving ModDown
        both stay bit-exact under batching."""
        ctx = CkksContext.create(ParameterSets.toy(), seed=3)
        keys = ctx.keygen()
        ev = ctx.evaluator
        for num_level in (len(ev.q_moduli), 2, 1):
            moduli = ev.q_moduli[:num_level]
            for seed in range(5):
                rng = np.random.default_rng(77 + seed)
                d = _random_eval_poly(moduli, ctx.params.n, rng)
                _assert_pair_equal(
                    keyswitch_looped(d, keys.relin, ev.p_moduli,
                                     plain_modulus=plain_modulus),
                    keyswitch(d, keys.relin, ev.p_moduli,
                              plain_modulus=plain_modulus),
                    f"t={plain_modulus} num_level={num_level} seed={seed}",
                )

    def test_rejects_coeff_domain(self):
        ctx = CkksContext.create(ParameterSets.toy(), seed=4)
        keys = ctx.keygen()
        d = RnsPoly.zero(ctx.evaluator.q_moduli, ctx.params.n, COEFF)
        with pytest.raises(ValueError):
            keyswitch(d, keys.relin, ctx.evaluator.p_moduli)


class TestBatchedHoistingBitExact:
    @pytest.fixture(scope="class")
    def setup(self):
        ctx = CkksContext.create(ParameterSets.toy(), seed=5)
        steps = [1, 2, 5, 7]
        keys = ctx.keygen(rotations=steps)
        return ctx, keys, steps

    def test_matches_looped_at_full_level(self, setup):
        ctx, keys, steps = setup
        ct = ctx.encrypt(list(np.arange(ctx.slots) * 0.25), keys)
        ref = hoisted_rotations_looped(ctx.evaluator, ct, steps, keys)
        got = hoisted_rotations(ctx.evaluator, ct, steps, keys)
        assert set(ref) == set(got) == set(steps)
        for s in steps:
            assert ref[s].c0 == got[s].c0, f"step {s} (c0)"
            assert ref[s].c1 == got[s].c1, f"step {s} (c1)"
            assert ref[s].level == got[s].level
            assert ref[s].scale == got[s].scale

    def test_matches_looped_at_low_level(self, setup):
        """At a low level whole digits drop out of every rotation key."""
        ctx, keys, steps = setup
        ct = ctx.encrypt(list(np.arange(ctx.slots) * 0.5), keys, level=1)
        ref = hoisted_rotations_looped(ctx.evaluator, ct, steps, keys)
        got = hoisted_rotations(ctx.evaluator, ct, steps, keys)
        for s in steps:
            assert ref[s].c0 == got[s].c0 and ref[s].c1 == got[s].c1, \
                f"step {s}"

    def test_matches_plain_rotation(self, setup):
        """Each batched hoisted rotation decrypts like a plain HROTATE."""
        ctx, keys, steps = setup
        values = list(np.arange(ctx.slots, dtype=float))
        ct = ctx.encrypt(values, keys)
        hoisted = hoisted_rotations(ctx.evaluator, ct, steps, keys)
        for s in steps:
            plain = ctx.decrypt_decode_real(
                ctx.hrotate(ct, s, keys), keys
            )
            batched = ctx.decrypt_decode_real(hoisted[s], keys)
            assert np.allclose(plain, batched, atol=1e-2)

    def test_missing_key_and_empty_steps(self, setup):
        ctx, keys, _ = setup
        ct = ctx.encrypt([1.0], keys)
        with pytest.raises(KeyError):
            hoisted_rotations(ctx.evaluator, ct, [3], keys)
        assert hoisted_rotations(ctx.evaluator, ct, [], keys) == {}


class TestKeyswitchPoolBudget:
    @pytest.mark.parametrize("set_name", ["toy", "small"])
    def test_working_set_within_s_max(self, set_name):
        """Every stage buffer of the batched pipeline, accounted against
        the paper's pool model, fits S_max = l*N*dnum*(l+k)*BS*w for a
        ciphertext pair (BS=2) in host words (w=8)."""
        params = getattr(ParameterSets, set_name)()
        ctx = CkksContext.create(params, seed=6)
        keys = ctx.keygen()
        ev = ctx.evaluator
        pool = MemoryPool.for_params(params, batch_size=2, word_bytes=8)
        rng = np.random.default_rng(9)
        d = _random_eval_poly(ev.q_moduli, params.n, rng)
        ks = keyswitch(d, keys.relin, ev.p_moduli, pool=pool)
        budget = max_working_set_bytes(params, batch_size=2, word_bytes=8)
        assert pool.stats["peak_bytes"] <= budget
        assert pool.stats["allocations"] == 5  # one per pipeline stage
        assert pool.stats["resets"] == 1
        # Accounting must not perturb the arithmetic.
        _assert_pair_equal(
            keyswitch_looped(d, keys.relin, ev.p_moduli), ks, set_name
        )

    def test_pool_reuse_across_calls(self):
        params = ParameterSets.toy()
        ctx = CkksContext.create(params, seed=7)
        keys = ctx.keygen()
        ev = ctx.evaluator
        pool = MemoryPool.for_params(params, batch_size=2, word_bytes=8)
        rng = np.random.default_rng(10)
        d = _random_eval_poly(ev.q_moduli, params.n, rng)
        for _ in range(3):
            keyswitch(d, keys.relin, ev.p_moduli, pool=pool)
        # The pool is reset (reused), not grown, on every operation.
        assert pool.stats["resets"] == 3
        assert pool.stats["peak_bytes"] <= pool.capacity


class TestFusedMultiplyAccumulate:
    def test_fma_matches_mul_add(self):
        moduli = ParameterSets.toy().chain().moduli
        n = 64
        for seed in range(10):
            rng = np.random.default_rng(500 + seed)
            a, b, c, e = (
                _random_eval_poly(tuple(moduli), n, rng) for _ in range(4)
            )
            ref = a * b + c * e
            got = (a * b).fma_(c, e)
            assert np.array_equal(ref.data, got.data), f"seed {seed}"

    def test_fma_returns_self_in_place(self):
        moduli = tuple(ParameterSets.toy().chain().moduli)
        rng = np.random.default_rng(42)
        acc = _random_eval_poly(moduli, 64, rng)
        c = _random_eval_poly(moduli, 64, rng)
        e = _random_eval_poly(moduli, 64, rng)
        out = acc.fma_(c, e)
        assert out is acc

    def test_fma_requires_eval_domain(self):
        moduli = tuple(ParameterSets.toy().chain().moduli)
        acc = RnsPoly.zero(moduli, 64, COEFF)
        other = RnsPoly.zero(moduli, 64, COEFF)
        with pytest.raises(ValueError):
            acc.fma_(other, other)
