"""Tests for RNS polynomials."""

import numpy as np
import pytest

from repro.ckks.poly import COEFF, EVAL, RnsPoly
from repro.numtheory import find_ntt_primes

N = 64
MODULI = tuple(find_ntt_primes(4, 28, N))
RNG = np.random.default_rng(0)


def rand_poly(moduli=MODULI, domain=COEFF):
    data = np.stack(
        [RNG.integers(0, q, size=N, dtype=np.uint64) for q in moduli]
    )
    return RnsPoly(data, moduli, domain)


class TestConstruction:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            RnsPoly(np.zeros((2, N), dtype=np.uint64), MODULI)

    def test_domain_validation(self):
        with pytest.raises(ValueError):
            RnsPoly(np.zeros((4, N), dtype=np.uint64), MODULI, "fourier")

    def test_from_signed(self):
        coeffs = np.array([-1, 0, 5] + [0] * (N - 3), dtype=np.int64)
        p = RnsPoly.from_signed(coeffs, MODULI)
        for i, q in enumerate(MODULI):
            assert int(p.data[i][0]) == q - 1
            assert int(p.data[i][2]) == 5

    def test_from_bigint(self):
        big = MODULI[0] * 3 + 7
        p = RnsPoly.from_bigint([big] + [0] * (N - 1), MODULI)
        assert int(p.data[0][0]) == (big % MODULI[0])

    def test_zero(self):
        z = RnsPoly.zero(MODULI, N)
        assert z.num_primes == 4
        assert not z.data.any()


class TestDomainConversion:
    def test_roundtrip(self):
        p = rand_poly()
        assert p.to_eval().to_coeff() == p

    def test_idempotent(self):
        p = rand_poly()
        e = p.to_eval()
        assert e.to_eval() == e
        assert p.to_coeff() == p

    def test_noop_conversion_never_aliases(self):
        """Regression: to_eval()/to_coeff() used to return ``self`` when
        already in the target domain, sharing the mutable data buffer —
        an in-place write then corrupted both values."""
        p = rand_poly()
        same = p.to_coeff()
        assert same is not p
        assert not np.shares_memory(same.data, p.data)
        original = p.data.copy()
        same.data[:] = 0
        assert np.array_equal(p.data, original)

        e = rand_poly(domain=EVAL)
        same_e = e.to_eval()
        assert same_e is not e
        assert not np.shares_memory(same_e.data, e.data)
        original = e.data.copy()
        same_e.data += np.uint64(1)
        assert np.array_equal(e.data, original)


class TestArithmetic:
    def test_add_sub_roundtrip(self):
        a, b = rand_poly(), rand_poly()
        assert (a + b) - b == a

    def test_neg(self):
        a = rand_poly()
        z = a + (-a)
        assert not z.data.any()

    def test_mul_requires_eval(self):
        a, b = rand_poly(), rand_poly()
        with pytest.raises(ValueError):
            _ = a * b

    def test_mul_matches_convolution(self):
        from repro.ntt import negacyclic_convolution

        a, b = rand_poly(), rand_poly()
        prod = (a.to_eval() * b.to_eval()).to_coeff()
        for i, q in enumerate(MODULI):
            expected = negacyclic_convolution(a.data[i], b.data[i], q)
            assert np.array_equal(prod.data[i], expected)

    def test_mismatched_bases_rejected(self):
        a = rand_poly()
        b = rand_poly(MODULI[:2])
        with pytest.raises(ValueError):
            _ = a + b

    def test_mismatched_domains_rejected(self):
        a = rand_poly()
        with pytest.raises(ValueError):
            _ = a + rand_poly(domain=EVAL)

    def test_mul_scalar(self):
        a = rand_poly()
        doubled = a.mul_scalar(2)
        assert doubled == a + a

    def test_mul_scalar_bigint(self):
        a = rand_poly()
        big = MODULI[0] + 1  # == 1 mod q0
        scaled = a.mul_scalar(big)
        assert np.array_equal(
            scaled.data[0],
            a.data[0],
        )


class TestStructure:
    def test_drop_last_primes(self):
        a = rand_poly()
        d = a.drop_last_primes(2)
        assert d.moduli == MODULI[:2]
        assert np.array_equal(d.data, a.data[:2])

    def test_drop_zero_is_noop(self):
        a = rand_poly()
        assert a.drop_last_primes(0) is a

    def test_drop_too_many(self):
        with pytest.raises(ValueError):
            rand_poly().drop_last_primes(4)

    def test_take_primes(self):
        a = rand_poly()
        t = a.take_primes([0, 2])
        assert t.moduli == (MODULI[0], MODULI[2])
        assert np.array_equal(t.data[1], a.data[2])

    def test_automorphism_requires_coeff(self):
        with pytest.raises(ValueError):
            rand_poly(domain=EVAL).automorphism(5)

    def test_automorphism_composition(self):
        a = rand_poly()
        two_n = 2 * N
        e1, e2 = 5, 25
        lhs = a.automorphism(e1).automorphism(e2)
        rhs = a.automorphism((e1 * e2) % two_n)
        assert lhs == rhs
