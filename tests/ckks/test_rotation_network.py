"""Tests for composed rotations via power-of-two key networks."""

import numpy as np
import pytest

from repro.ckks import CkksContext, ParameterSets


@pytest.fixture(scope="module")
def ctx():
    return CkksContext.create(ParameterSets.toy(), seed=21)


@pytest.fixture(scope="module")
def keys(ctx):
    pow2 = ctx.evaluator.power_of_two_rotations(ctx.slots)
    return ctx.keygen(rotations=pow2)


class TestRotationNetwork:
    def test_key_set_is_logarithmic(self, ctx):
        steps = ctx.evaluator.power_of_two_rotations(ctx.slots)
        assert steps == [1, 2, 4, 8, 16]

    @pytest.mark.parametrize("step", [1, 3, 7, 13, 31])
    def test_arbitrary_steps(self, ctx, keys, step):
        vals = np.arange(ctx.slots, dtype=float) / 11
        ct = ctx.encrypt(vals, keys)
        out = ctx.evaluator.hrotate_composed(ct, step, keys)
        got = ctx.decrypt_decode_real(out, keys)
        assert np.max(np.abs(got - np.roll(vals, -step))) < 1e-3

    def test_zero_step_is_identity(self, ctx, keys):
        ct = ctx.encrypt([1.0, 2.0], keys)
        assert ctx.evaluator.hrotate_composed(ct, 0, keys) is ct

    def test_full_cycle_is_identity(self, ctx, keys):
        vals = np.arange(ctx.slots, dtype=float) / 11
        ct = ctx.encrypt(vals, keys)
        out = ctx.evaluator.hrotate_composed(ct, ctx.slots, keys)
        got = ctx.decrypt_decode_real(out, keys)
        assert np.max(np.abs(got - vals)) < 1e-3

    def test_negative_equivalent(self, ctx, keys):
        """Step -1 == slots - 1 (cyclic)."""
        vals = np.arange(ctx.slots, dtype=float) / 11
        ct = ctx.encrypt(vals, keys)
        out = ctx.evaluator.hrotate_composed(ct, -1, keys)
        got = ctx.decrypt_decode_real(out, keys)
        assert np.max(np.abs(got - np.roll(vals, 1))) < 1e-3
