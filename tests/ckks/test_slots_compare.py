"""Tests for slot utilities and approximate comparisons."""

import numpy as np
import pytest

from repro.ckks import CkksContext, CkksParams
from repro.ckks.compare import (
    approx_max,
    approx_relu,
    approx_sign,
    levels_for_sign,
    sign_reference,
)
from repro.ckks.slots import SlotOps


@pytest.fixture(scope="module")
def ctx():
    params = CkksParams(n=64, max_level=12, num_special=2, dnum=13,
                        scale_bits=26, name="slots-toy")
    return CkksContext.create(params, seed=23)


@pytest.fixture(scope="module")
def keys(ctx):
    return ctx.keygen(rotations=SlotOps.required_rotations(ctx.slots))


@pytest.fixture(scope="module")
def slots(ctx):
    return SlotOps(ctx)


class TestSlotOps:
    def test_mask(self, ctx, keys, slots):
        vals = np.arange(ctx.slots, dtype=float) / 10
        ct = ctx.encrypt(vals, keys)
        out = slots.mask(ct, [0, 3, 5])
        got = ctx.decrypt_decode_real(out, keys)
        expected = np.zeros_like(vals)
        expected[[0, 3, 5]] = vals[[0, 3, 5]]
        assert np.max(np.abs(got - expected)) < 1e-3

    def test_select(self, ctx, keys, slots):
        a = ctx.encrypt(np.full(ctx.slots, 1.0), keys)
        b = ctx.encrypt(np.full(ctx.slots, 2.0), keys)
        out = slots.select(a, b, [0, 1])
        got = ctx.decrypt_decode_real(out, keys)
        assert abs(got[0] - 1.0) < 1e-3
        assert abs(got[5] - 2.0) < 1e-3

    def test_sum_all(self, ctx, keys, slots):
        vals = np.arange(ctx.slots, dtype=float) / 50
        ct = ctx.encrypt(vals, keys)
        out = slots.sum_all(ct, keys)
        got = ctx.decrypt_decode_real(out, keys)
        assert np.max(np.abs(got - vals.sum())) < 2e-3

    def test_average_all(self, ctx, keys, slots):
        vals = np.arange(ctx.slots, dtype=float) / 50
        out = slots.average_all(ctx.encrypt(vals, keys), keys)
        got = ctx.decrypt_decode_real(out, keys)
        assert np.max(np.abs(got - vals.mean())) < 1e-3

    def test_sum_blocks(self, ctx, keys, slots):
        vals = np.arange(ctx.slots, dtype=float) / 50
        out = slots.sum_blocks(ctx.encrypt(vals, keys), 4, keys)
        got = ctx.decrypt_decode_real(out, keys)
        # Block-start slots hold contiguous 4-sums.
        for start in range(0, 16, 4):
            assert abs(got[start] - vals[start: start + 4].sum()) < 2e-3

    def test_sum_blocks_validates(self, ctx, keys, slots):
        ct = ctx.encrypt([1.0], keys)
        with pytest.raises(ValueError):
            slots.sum_blocks(ct, 3, keys)

    def test_inner_product(self, ctx, keys, slots):
        rng = np.random.default_rng(1)
        a = rng.uniform(-0.5, 0.5, ctx.slots)
        b = rng.uniform(-0.5, 0.5, ctx.slots)
        out = slots.inner_product(
            ctx.encrypt(a, keys), ctx.encrypt(b, keys), keys
        )
        got = ctx.decrypt_decode_real(out, keys)
        assert np.max(np.abs(got - a @ b)) < 5e-3

    def test_replicate(self, ctx, keys, slots):
        vals = np.arange(ctx.slots, dtype=float) / 10
        out = slots.replicate(ctx.encrypt(vals, keys), 7, keys)
        got = ctx.decrypt_decode_real(out, keys)
        assert np.max(np.abs(got - vals[7])) < 2e-3


class TestComparisons:
    def test_sign_reference_sharpens(self):
        x = np.array([-0.8, -0.1, 0.05, 0.9])
        r3 = sign_reference(x, rounds=3)
        assert np.all(np.sign(r3) == np.sign(x))
        assert np.all(np.abs(r3) >= np.abs(x))

    def test_approx_sign_matches_reference(self, ctx, keys):
        x = np.array([-0.9, -0.4, 0.2, 0.7, 0.05])
        ct = ctx.encrypt(x, keys)
        out = approx_sign(ctx.evaluator, ct, keys, rounds=2)
        got = ctx.decrypt_decode_real(out, keys)[:5]
        assert np.max(np.abs(got - sign_reference(x, rounds=2))) < 1e-2

    def test_sign_depth_accounting(self, ctx, keys):
        ct = ctx.encrypt([0.5], keys)
        out = approx_sign(ctx.evaluator, ct, keys, rounds=2)
        assert ct.level - out.level == levels_for_sign(2)

    def test_sign_validates_rounds(self, ctx, keys):
        ct = ctx.encrypt([0.5], keys)
        with pytest.raises(ValueError):
            approx_sign(ctx.evaluator, ct, keys, rounds=0)

    def test_relu(self, ctx, keys):
        x = np.array([-0.8, -0.2, 0.3, 0.9])
        ct = ctx.encrypt(x, keys)
        out = approx_relu(ctx.evaluator, ct, keys, rounds=2)
        got = ctx.decrypt_decode_real(out, keys)[:4]
        # Positive inputs pass through; negatives are strongly damped.
        assert np.max(np.abs(got[2:] - x[2:])) < 0.12
        assert np.all(np.abs(got[:2]) < 0.12)

    def test_max(self, ctx, keys):
        a = np.array([0.3, -0.5, 0.8, -0.1])
        b = np.array([-0.2, 0.4, 0.1, -0.6])
        out = approx_max(
            ctx.evaluator, ctx.encrypt(a, keys), ctx.encrypt(b, keys),
            keys, rounds=2,
        )
        got = ctx.decrypt_decode_real(out, keys)[:4]
        assert np.max(np.abs(got - np.maximum(a, b))) < 0.12
