"""Tests for CKKS parameter sets."""

import pytest

from repro.ckks import CkksParams, ParameterSets


class TestValidation:
    def test_bad_ring_degree(self):
        with pytest.raises(ValueError):
            CkksParams(n=100, max_level=2)
        with pytest.raises(ValueError):
            CkksParams(n=4, max_level=2)

    def test_needs_levels(self):
        with pytest.raises(ValueError):
            CkksParams(n=64, max_level=0)

    def test_needs_special_prime(self):
        with pytest.raises(ValueError):
            CkksParams(n=64, max_level=2, num_special=0)

    def test_rescale_primes_range(self):
        with pytest.raises(ValueError):
            CkksParams(n=64, max_level=2, rescale_primes=3)

    def test_dnum_range(self):
        with pytest.raises(ValueError):
            CkksParams(n=64, max_level=2, dnum=0)
        with pytest.raises(ValueError):
            CkksParams(n=64, max_level=2, dnum=99)


class TestDerived:
    def test_slots(self):
        assert ParameterSets.toy().slots == 32

    def test_scale(self):
        p = ParameterSets.toy()
        assert p.scale == 2.0**26

    def test_double_prime_effective_scale(self):
        p = ParameterSets.double_rescale_toy()
        assert p.effective_scale_bits == 32
        assert p.scale == 2.0**32

    def test_prime_counts(self):
        p = ParameterSets.toy()
        assert p.num_primes == 4
        assert p.total_primes == 6

    def test_chain_is_cached_and_consistent(self):
        p = ParameterSets.toy()
        chain = p.chain()
        assert chain is p.chain()
        assert len(chain.moduli) == p.num_primes
        assert len(chain.special_primes) == p.num_special

    def test_ciphertext_bytes(self):
        p = ParameterSets.toy()
        # 2 polys x (level+1) primes x N coeffs x 4 bytes
        assert p.ciphertext_bytes() == 2 * 4 * 64 * 4
        assert p.ciphertext_bytes(level=0) == 2 * 1 * 64 * 4


class TestPaperSets:
    """Table VI and Table XIII parameter sets match the paper."""

    @pytest.mark.parametrize("name,n,level", [
        ("SET-A", 2**12, 2), ("SET-B", 2**13, 6), ("SET-C", 2**14, 14),
        ("SET-D", 2**15, 24), ("SET-E", 2**16, 34),
    ])
    def test_table_vi(self, name, n, level):
        p = ParameterSets.by_name(name)
        assert p.n == n
        assert p.max_level == level
        assert p.num_special == 1  # Table VI: k = 1

    @pytest.mark.parametrize("name,n,level,k", [
        ("ResNet", 2**16, 37, 13), ("HELR", 2**16, 37, 13),
        ("Boot", 2**16, 34, 12), ("AES", 2**16, 46, 10),
    ])
    def test_table_xiii(self, name, n, level, k):
        p = ParameterSets.by_name(name)
        assert p.n == n
        assert p.max_level == level
        assert p.num_special == k

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            ParameterSets.by_name("SET-Z")

    def test_table_vi_collection_ordered(self):
        sets = ParameterSets.table_vi()
        assert list(sets) == ["SET-A", "SET-B", "SET-C", "SET-D", "SET-E"]

    def test_log_qp_toy_plausible(self):
        # toy: 31 (base) + 3*26 (scale) + 2*31 (special) ~ 171
        assert 150 <= ParameterSets.toy().log_qp <= 180
