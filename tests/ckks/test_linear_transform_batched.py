"""Property suite for the batched slot pipeline.

Covers the plan/compile linear-transform machinery (batched apply ==
``apply_looped`` bit-exact, plan memoization, lossless giant-group
pruning), the FFT factorization of the embedding DFT (factor algebra,
CoeffToSlot∘SlotToCoeff round trip at every ``fuse``), rotation-key
deduplication, and an end-to-end factored-bootstrap precision
regression against the dense path.
"""

from functools import reduce

import numpy as np
import pytest

from repro.ckks import CkksContext, CkksParams, ParameterSets
from repro.ckks.bootstrap import (
    BootstrapConfig,
    Bootstrapper,
    _embedding_matrices,
    factored_stage_matrices,
    special_fft_factors,
)
from repro.ckks.linear_transform import LinearTransform
from repro.numtheory import bit_reverse_permutation


@pytest.fixture(scope="module")
def ctx():
    return CkksContext.create(ParameterSets.toy(), seed=21)


@pytest.fixture(scope="module")
def keys(ctx):
    s = ctx.slots
    return ctx.keygen(rotations=list(range(1, s)))


def _bit_equal(a, b):
    return (
        np.array_equal(a.c0.data, b.c0.data)
        and np.array_equal(a.c1.data, b.c1.data)
        and a.scale == b.scale
        and a.level == b.level
    )


class TestBatchedEqualsLooped:
    @pytest.mark.parametrize("bsgs", [True, False])
    @pytest.mark.parametrize("trial", range(3))
    def test_random_matrix_bit_exact(self, ctx, keys, bsgs, trial):
        rng = np.random.default_rng(100 + trial)
        s = ctx.slots
        mat = rng.normal(size=(s, s)) + 1j * rng.normal(size=(s, s))
        lt = LinearTransform(ctx, mat, bsgs=bsgs)
        vals = rng.normal(size=s) * 0.3
        level = [ctx.params.max_level, 3, 1][trial]
        ct = ctx.encrypt(vals, keys, level=level)
        assert _bit_equal(lt.apply(ct, keys), lt.apply_looped(ct, keys))

    def test_matches_plaintext_matmul(self, ctx, keys):
        rng = np.random.default_rng(7)
        s = ctx.slots
        mat = rng.normal(size=(s, s)) * 0.5
        lt = LinearTransform(ctx, mat)
        vals = rng.normal(size=s) * 0.4
        out = lt.apply(ctx.encrypt(vals, keys), keys)
        got = ctx.decrypt_decode_real(out, keys)
        assert np.max(np.abs(got - mat @ vals)) < 1e-2

    def test_plan_is_memoized_per_level(self, ctx, keys):
        rng = np.random.default_rng(8)
        s = ctx.slots
        lt = LinearTransform(ctx, rng.normal(size=(s, s)))
        ct = ctx.encrypt(np.zeros(s), keys)
        plan = lt.compile(ct.level)
        assert lt.compile(ct.level) is plan  # no re-encode on reuse
        lt.apply(ct, keys)
        lt.apply_looped(ct, keys)
        assert lt.compile(ct.level) is plan
        assert not plan.stack.flags.writeable

    def test_apply_does_not_reencode(self, ctx, keys, monkeypatch):
        rng = np.random.default_rng(9)
        s = ctx.slots
        lt = LinearTransform(ctx, rng.normal(size=(s, s)))
        ct = ctx.encrypt(np.zeros(s), keys)
        lt.apply(ct, keys)  # compiles
        calls = {"n": 0}
        orig = ctx.encoder.encode_many

        def counting(*a, **k):
            calls["n"] += 1
            return orig(*a, **k)

        monkeypatch.setattr(ctx.encoder, "encode_many", counting)
        lt.apply(ct, keys)
        lt.apply_looped(ct, keys)
        assert calls["n"] == 0


class TestGiantGroupPruning:
    def test_banded_matrix_prunes_and_stays_lossless(self, ctx, keys):
        rng = np.random.default_rng(11)
        s = ctx.slots
        # A narrow band: only diagonals 0..2 are non-zero, so most
        # giant-step groups are structurally empty.
        mat = np.zeros((s, s), dtype=np.complex128)
        j = np.arange(s)
        for d in range(3):
            mat[j, (j + d) % s] = rng.normal(size=s)
        lt = LinearTransform(ctx, mat, bsgs=True)
        dense = LinearTransform(
            ctx, mat + 1e-9 * np.ones((s, s)), bsgs=True
        )
        assert lt.num_giant_groups < dense.num_giant_groups
        assert lt.pruned_giant_steps  # something was skipped
        vals = rng.normal(size=s) * 0.4
        ct = ctx.encrypt(vals, keys)
        got = ctx.decrypt_decode_real(lt.apply(ct, keys), keys)
        assert np.max(np.abs(got - (mat @ vals).real)) < 1e-2

    def test_pruned_steps_not_required(self, ctx):
        s = ctx.slots
        mat = np.eye(s, dtype=np.complex128)
        lt = LinearTransform(ctx, mat, bsgs=True)
        required = set(lt.required_rotations())
        assert not required & set(lt.pruned_giant_steps)


class TestFftFactorization:
    @pytest.mark.parametrize("slots", [4, 8, 32])
    def test_factor_product_is_u0_times_bitrev(self, slots):
        factors = special_fft_factors(slots)
        perm = np.eye(slots)[bit_reverse_permutation(slots)]
        u0 = np.array([
            [np.exp(1j * np.pi * (pow(5, j, 4 * slots) * k % (4 * slots))
                    / (2 * slots)) for k in range(slots)]
            for j in range(slots)
        ])
        assert np.allclose(reduce(np.matmul, factors) @ perm, u0)

    @pytest.mark.parametrize("fuse", [1, 2, 3])
    def test_fused_products_match_unfused(self, fuse):
        s = 32
        stc1, cts1 = factored_stage_matrices(s, 1)
        stc, cts = factored_stage_matrices(s, fuse)
        chain = lambda mats: reduce(lambda a, m: m @ a, mats, np.eye(s))
        assert np.allclose(chain(stc), chain(stc1))
        assert np.allclose(chain(cts), chain(cts1))

    def test_each_factor_has_at_most_three_diagonals(self):
        s = 32
        j = np.arange(s)
        for mat in special_fft_factors(s):
            nonzero = {
                d for d in range(s)
                if np.any(np.abs(mat[j, (j + d) % s]) > 1e-12)
            }
            assert len(nonzero) <= 3

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            special_fft_factors(12)


class TestFactoredBootstrap:
    @pytest.fixture(scope="class")
    def boot_ctx(self):
        params = CkksParams(
            n=64, max_level=14, num_special=2, dnum=15, scale_bits=26,
            secret_hamming_weight=8, name="boot-toy",
        )
        return CkksContext.create(params, seed=7)

    @pytest.fixture(scope="class")
    def boot_keys(self, boot_ctx):
        steps = set(
            Bootstrapper.required_rotations_for(boot_ctx.params)
        )
        for fuse in (1, 2, 3):
            steps.update(Bootstrapper.required_rotations_for(
                boot_ctx.params, fft_factored=True, fuse=fuse
            ))
        return boot_ctx.keygen(rotations=sorted(steps), conjugation=True)

    @pytest.mark.parametrize("fuse", [1, 2, 3])
    def test_cts_of_stc_round_trips(self, boot_ctx, boot_keys, fuse):
        """Factored CtS∘StC == identity on slots (the two bit reversals
        cancel), within encoder precision."""
        boot = Bootstrapper(boot_ctx, BootstrapConfig(
            fft_factored=True, fuse=fuse
        ))
        rng = np.random.default_rng(31)
        vals = rng.normal(size=boot_ctx.slots) * 0.3
        ct = boot_ctx.encrypt(
            vals, boot_keys, level=2 * boot.stc_levels
        )
        down = boot.slot_to_coeff(ct, boot_keys)
        back = boot.coeff_to_slot(down, boot_keys)
        got = boot_ctx.decrypt_decode_real(back, boot_keys)
        assert np.max(np.abs(got - vals)) < 1e-2

    def test_analytic_rotations_superset_of_actual(self, boot_ctx):
        for fuse in (1, 2, 3):
            boot = Bootstrapper(boot_ctx, BootstrapConfig(
                fft_factored=True, fuse=fuse
            ))
            inst = set(boot.required_rotations())
            analytic = set(Bootstrapper.required_rotations_for(
                boot_ctx.params, fft_factored=True, fuse=fuse
            ))
            assert inst <= analytic

    def test_required_rotations_sorted_unique(self, boot_ctx):
        boot = Bootstrapper(boot_ctx, BootstrapConfig(
            fft_factored=True, fuse=1
        ))
        rots = boot.required_rotations()
        assert rots == sorted(set(rots))
        assert 0 not in rots

    def test_factored_needs_levels(self, boot_ctx, boot_keys):
        boot = Bootstrapper(boot_ctx, BootstrapConfig(fft_factored=True))
        ct = boot_ctx.encrypt(
            np.zeros(boot_ctx.slots), boot_keys, level=1
        )
        with pytest.raises(ValueError, match="level"):
            boot.slot_to_coeff(ct, boot_keys)

    @pytest.mark.parametrize("fuse", [1, 3])
    def test_full_bootstrap_precision_regression(self, boot_ctx,
                                                 boot_keys, fuse):
        """End to end: the factored bootstrap refreshes levels and stays
        inside the dense path's documented precision envelope (5e-2,
        tests/ckks/test_bootstrap.py)."""
        cfg = BootstrapConfig(
            sine_degree=63, eval_range=4.5, fft_factored=True, fuse=fuse
        )
        boot = Bootstrapper(boot_ctx, cfg)
        vals = np.zeros(boot_ctx.slots)
        vals[:4] = [0.5, -0.25, 0.125, 0.75]
        ct = boot_ctx.encrypt(vals, boot_keys, level=boot.stc_levels)
        out = boot.bootstrap(ct, boot_keys)
        # The dense path comes back at level 5; the factored CtS spends
        # stc_levels instead of 1, shifting the output down accordingly.
        assert out.level >= 5 - (boot.stc_levels - 1)
        assert out.level >= 1  # enough budget left to keep computing
        dec = boot_ctx.decrypt_decode_real(out, boot_keys)
        assert np.max(np.abs(dec - vals)) < 5e-2

    def test_embedding_matrix_matches_analytic_form(self, boot_ctx):
        """The numerically derived U0 equals the analytic
        ``zeta^(5^j k)`` form the factorization is built on."""
        u0, _, _ = _embedding_matrices(boot_ctx)
        s = boot_ctx.slots
        analytic = np.empty((s, s), dtype=np.complex128)
        for j in range(s):
            for k in range(s):
                analytic[j, k] = np.exp(
                    1j * np.pi * (pow(5, j, 4 * s) * k % (4 * s))
                    / (2 * s)
                )
        assert np.allclose(u0, analytic)


class TestKeyDedup:
    def test_keygen_skips_duplicates_and_zero(self, ctx):
        keys = ctx.keygen(rotations=[0, 3, 3, 5, 3])
        assert sorted(keys.rotation) == [3, 5]
