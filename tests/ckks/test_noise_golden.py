"""Golden tests: NoiseEstimator predictions vs measured ciphertext noise.

These keep the analytic model (and, transitively, the dagcheck D-NSE
noise walker that reuses its formulas) honest: for rotation chains,
compiled linear transforms and mult/rescale chains the predicted
``noise_bits`` must track :func:`measured_noise_bits` of the actual
toy-parameter execution within a fixed band, and the level/scale
bookkeeping must match the real ciphertexts exactly.

The estimator is a high-probability upper-tail model, so the band is
asymmetric: large over-prediction is a modeling bug, but systematic
*under*-prediction is the dangerous direction (a noise budget the
checker signs off on that the ciphertext has already blown).
"""

from functools import reduce

import numpy as np
import pytest

from repro.ckks import (
    CkksContext,
    NoiseEstimator,
    ParameterSets,
    measured_noise_bits,
)
from repro.ckks.linear_transform import LinearTransform

#: |measured - predicted| ceiling in bits.  The toy parameter set keeps
#: everything deterministic, so this is a modeling band, not a flake
#: allowance.
BAND_BITS = 10.0
#: How far the measurement may exceed the prediction (the unsafe
#: direction) before the model is lying about remaining budget.
UNDER_BITS = 6.0


@pytest.fixture(scope="module")
def ctx():
    return CkksContext.create(ParameterSets.toy(), seed=11)


@pytest.fixture(scope="module")
def keys(ctx):
    return ctx.keygen(rotations=list(range(1, ctx.slots)))


def _check_band(measured: float, predicted: float, what: str) -> None:
    assert abs(measured - predicted) < BAND_BITS, (
        f"{what}: measured {measured:.1f} bits vs "
        f"predicted {predicted:.1f} bits"
    )
    assert measured - predicted < UNDER_BITS, (
        f"{what}: model under-predicts by "
        f"{measured - predicted:.1f} bits"
    )


class TestRotationChain:
    def test_each_hop_tracks_measurement(self, ctx, keys):
        est = NoiseEstimator(ctx.params)
        vals = np.arange(ctx.slots, dtype=float) / 7 - 0.4
        ct = ctx.encrypt(vals, keys)
        state = est.fresh()
        for hop in range(1, 4):
            ct = ctx.hrotate(ct, 1, keys)
            state = est.rotate(state)
            measured = measured_noise_bits(
                ctx.evaluator, ct, keys.secret, np.roll(vals, -hop)
            )
            _check_band(measured, state.noise_bits, f"rotation hop {hop}")
            assert ct.level == state.level
            assert ct.scale == pytest.approx(state.scale)

    def test_prediction_monotone_in_hops(self, ctx):
        est = NoiseEstimator(ctx.params)
        state = est.fresh()
        previous = state.noise_bits
        for _ in range(5):
            state = est.rotate(state)
            assert state.noise_bits >= previous
            previous = state.noise_bits


class TestLinearTransformChain:
    def test_compiled_transform_tracks_measurement(self, ctx, keys):
        from repro.ckks.noise import NoiseState

        rng = np.random.default_rng(5)
        s = ctx.slots
        mat = rng.normal(size=(s, s)) * 0.5
        lt = LinearTransform(ctx, mat)
        vals = rng.normal(size=s) * 0.4
        ct = ctx.encrypt(vals, keys)
        out = lt.apply(ct, keys)

        est = NoiseEstimator(ctx.params)
        plan = lt.compile(ct.level)
        # Model: every diagonal is one rotated copy (rotate = hoisted
        # key-switch), the plaintext-diagonal product scales the noise by
        # the encoded magnitude, the s partial sums add, and the closing
        # rescale brings the scale back down — mirroring apply().
        rotated = est.rotate(est.fresh())
        summed = reduce(est.add, [rotated] * s)
        diag_bound = float(np.max(np.abs(mat)))
        pre_rescale = NoiseState(
            std=summed.std * plan.pt_scale * max(diag_bound, 1.0),
            level=summed.level,
            scale=summed.scale * plan.pt_scale,
        )
        predicted = est.rescale(pre_rescale)

        measured = measured_noise_bits(
            ctx.evaluator, out, keys.secret, mat @ vals
        )
        _check_band(measured, predicted.noise_bits, "linear transform")
        assert out.level == predicted.level
        assert out.scale == pytest.approx(predicted.scale, rel=1e-6)


class TestRescaleChain:
    def test_squaring_chain_tracks_measurement(self, ctx, keys):
        est = NoiseEstimator(ctx.params)
        vals = np.array([0.5, -0.25, 0.75, 0.1])
        ct = ctx.encrypt(vals, keys)
        state = est.fresh()
        expected = vals.copy()
        for depth in range(1, 3):
            ct = ctx.hmult(ct, ct, keys)
            state = est.rescale(est.mult(state, state))
            expected = expected**2
            measured = measured_noise_bits(
                ctx.evaluator, ct, keys.secret, expected
            )
            _check_band(
                measured, state.noise_bits, f"squaring depth {depth}"
            )
            assert ct.level == state.level
            assert ct.scale == pytest.approx(state.scale, rel=1e-6)

    def test_budget_shrinks_with_every_rescale(self, ctx):
        est = NoiseEstimator(ctx.params)
        state = est.fresh()
        budget = state.budget_bits(ctx.params)
        for _ in range(2):
            state = est.rescale(est.mult(state, state))
            assert state.budget_bits(ctx.params) < budget
            budget = state.budget_bits(ctx.params)
        assert budget > 0, "toy chain exhausted its budget unexpectedly"
