"""End-to-end tests of every homomorphic operation (§II-A)."""

import numpy as np
import pytest

from repro.ckks import CkksContext, ParameterSets

TOL = 1e-3


@pytest.fixture(scope="module")
def ctx():
    return CkksContext.create(ParameterSets.toy(), seed=42)


@pytest.fixture(scope="module")
def keys(ctx):
    return ctx.keygen(rotations=[1, 2, 5], conjugation=True)


@pytest.fixture(scope="module")
def vals():
    rng = np.random.default_rng(3)
    return rng.uniform(-2, 2, size=8)


@pytest.fixture(scope="module")
def ct(ctx, keys, vals):
    return ctx.encrypt(vals, keys)


def decoded(ctx, keys, ct, count=8):
    return ctx.decrypt_decode_real(ct, keys)[:count]


class TestEncryptDecrypt:
    def test_roundtrip(self, ctx, keys, ct, vals):
        assert np.max(np.abs(decoded(ctx, keys, ct) - vals)) < 1e-4

    def test_fresh_level_and_scale(self, ctx, ct):
        assert ct.level == ctx.params.max_level
        assert ct.scale == ctx.params.scale

    def test_encrypt_at_lower_level(self, ctx, keys, vals):
        ct = ctx.encrypt(vals, keys, level=1)
        assert ct.level == 1
        assert np.max(np.abs(decoded(ctx, keys, ct) - vals)) < 1e-4

    def test_ciphertexts_are_randomized(self, ctx, keys, vals):
        a = ctx.encrypt(vals, keys)
        b = ctx.encrypt(vals, keys)
        assert not np.array_equal(a.c0.data, b.c0.data)

    def test_decrypt_without_key_gives_garbage(self, ctx, keys, vals):
        other = CkksContext.create(ParameterSets.toy(), seed=99)
        wrong_keys = other.keygen()
        ct = ctx.encrypt(vals, keys)
        wrong = ctx.decrypt_decode_real(ct, wrong_keys)
        assert np.max(np.abs(wrong[:8] - vals)) > 1.0


class TestAdditive:
    def test_hadd(self, ctx, keys, ct, vals):
        out = ctx.hadd(ct, ct)
        assert np.max(np.abs(decoded(ctx, keys, out) - 2 * vals)) < TOL

    def test_hsub(self, ctx, keys, ct, vals):
        other = ctx.encrypt(np.ones(8), keys)
        out = ctx.hsub(ct, other)
        assert np.max(np.abs(decoded(ctx, keys, out) - (vals - 1))) < TOL

    def test_negate(self, ctx, keys, ct, vals):
        out = ctx.evaluator.negate(ct)
        assert np.max(np.abs(decoded(ctx, keys, out) + vals)) < TOL

    def test_add_plain(self, ctx, keys, ct, vals):
        pt = ctx.encode(np.full(8, 0.5), level=ct.level)
        out = ctx.evaluator.add_plain(ct, pt)
        assert np.max(np.abs(decoded(ctx, keys, out) - (vals + 0.5))) < TOL

    def test_add_scalar(self, ctx, keys, ct, vals):
        out = ctx.evaluator.add_scalar(ct, 1.25)
        assert np.max(np.abs(decoded(ctx, keys, out) - (vals + 1.25))) < TOL

    def test_add_levels_auto_align(self, ctx, keys, vals):
        hi = ctx.encrypt(vals, keys)
        lo = ctx.encrypt(vals, keys, level=1)
        out = ctx.hadd(hi, lo)
        assert out.level == 1
        assert np.max(np.abs(decoded(ctx, keys, out) - 2 * vals)) < TOL

    def test_scale_mismatch_rejected(self, ctx, keys, vals):
        a = ctx.encrypt(vals, keys)
        b = ctx.encrypt(vals, keys, scale=2.0**20)
        with pytest.raises(ValueError):
            ctx.hadd(a, b)


class TestMultiplicative:
    def test_pmult(self, ctx, keys, ct, vals):
        pt = ctx.encode(np.full(8, 3.0), level=ct.level)
        out = ctx.evaluator.rescale(ctx.pmult(ct, pt))
        assert np.max(np.abs(decoded(ctx, keys, out) - 3 * vals)) < TOL

    def test_pmult_scalar(self, ctx, keys, ct, vals):
        out = ctx.evaluator.pmult_scalar(ct, -0.5)
        out = ctx.evaluator.rescale(out)
        assert np.max(np.abs(decoded(ctx, keys, out) + 0.5 * vals)) < TOL

    def test_hmult(self, ctx, keys, ct, vals):
        out = ctx.hmult(ct, ct, keys)
        assert out.level == ct.level - 1  # rescaled
        assert np.max(np.abs(decoded(ctx, keys, out) - vals**2)) < TOL

    def test_hmult_without_rescale(self, ctx, keys, ct, vals):
        out = ctx.hmult(ct, ct, keys, rescale=False)
        assert out.level == ct.level
        assert out.scale == pytest.approx(ct.scale**2)
        assert np.max(np.abs(decoded(ctx, keys, out) - vals**2)) < TOL

    def test_mult_depth_two(self, ctx, keys, vals):
        ct = ctx.encrypt(vals, keys)
        sq = ctx.hmult(ct, ct, keys)
        quad = ctx.hmult(sq, sq, keys)
        assert np.max(np.abs(decoded(ctx, keys, quad) - vals**4)) < 5e-3

    def test_mult_different_messages(self, ctx, keys, vals):
        other_vals = np.linspace(-1, 1, 8)
        a = ctx.encrypt(vals, keys)
        b = ctx.encrypt(other_vals, keys)
        out = ctx.hmult(a, b, keys)
        assert np.max(
            np.abs(decoded(ctx, keys, out) - vals * other_vals)
        ) < TOL

    def test_square_helper(self, ctx, keys, ct, vals):
        out = ctx.evaluator.square(ct, keys)
        assert np.max(np.abs(decoded(ctx, keys, out) - vals**2)) < TOL


class TestRescale:
    def test_rescale_drops_level_and_scale(self, ctx, keys, ct):
        raw = ctx.hmult(ct, ct, keys, rescale=False)
        out = ctx.rescale(raw)
        assert out.level == raw.level - 1
        assert out.scale < raw.scale

    def test_rescale_at_bottom_fails(self, ctx, keys, vals):
        ct = ctx.encrypt(vals, keys, level=0)
        with pytest.raises(ValueError):
            ctx.rescale(ct)


class TestRotation:
    def test_rotate_by_one(self, ctx, keys, vals):
        full = np.zeros(ctx.slots)
        full[:8] = vals
        ct = ctx.encrypt(full, keys)
        out = ctx.hrotate(ct, 1, keys)
        expected = np.roll(full, -1)
        got = ctx.decrypt_decode_real(out, keys)
        assert np.max(np.abs(got - expected)) < TOL

    def test_rotate_steps(self, ctx, keys):
        full = np.arange(ctx.slots, dtype=float) / 10
        ct = ctx.encrypt(full, keys)
        for step in (2, 5):
            out = ctx.hrotate(ct, step, keys)
            got = ctx.decrypt_decode_real(out, keys)
            assert np.max(np.abs(got - np.roll(full, -step))) < TOL

    def test_missing_rotation_key(self, ctx, keys, ct):
        with pytest.raises(KeyError):
            ctx.hrotate(ct, 7, keys)

    def test_add_rotation_key_later(self, ctx, keys):
        ctx.add_rotation_key(keys, 3)
        full = np.arange(ctx.slots, dtype=float) / 10
        ct = ctx.encrypt(full, keys)
        out = ctx.hrotate(ct, 3, keys)
        got = ctx.decrypt_decode_real(out, keys)
        assert np.max(np.abs(got - np.roll(full, -3))) < TOL

    def test_conjugate(self, ctx, keys):
        vals = np.array([1 + 2j, -0.5 - 1j, 3.0 + 0j])
        ct = ctx.encrypt(vals, keys)
        out = ctx.evaluator.conjugate(ct, keys)
        got = ctx.decrypt_decode(out, keys)[:3]
        assert np.max(np.abs(got - np.conj(vals))) < TOL


class TestScaleManagement:
    def test_match_scale(self, ctx, keys, ct):
        target = ct.scale * 4
        out = ctx.evaluator.match_scale(ct, target)
        assert out.scale == pytest.approx(target)

    def test_match_scale_cannot_lower(self, ctx, keys, ct):
        with pytest.raises(ValueError):
            ctx.evaluator.match_scale(ct, ct.scale / 2)

    def test_hadd_matched(self, ctx, keys, vals):
        a = ctx.encrypt(vals, keys)
        b = ctx.evaluator.pmult_scalar(ctx.encrypt(vals, keys), 1.0)
        out = ctx.evaluator.hadd_matched(a, b)
        assert np.max(np.abs(decoded(ctx, keys, out) - 2 * vals)) < TOL


class TestDoublePrimeRescale:
    """The double-prime rescaling path [5] used for 32-bit words."""

    def test_hmult_with_double_rescale(self):
        ctx = CkksContext.create(ParameterSets.double_rescale_toy(), seed=5)
        keys = ctx.keygen()
        vals = np.array([1.5, -0.75, 2.0])
        ct = ctx.encrypt(vals, keys)
        out = ctx.hmult(ct, ct, keys)
        assert out.level == ct.level - 2  # two primes dropped
        got = ctx.decrypt_decode_real(out, keys)[:3]
        assert np.max(np.abs(got - vals**2)) < 1e-2
