"""Tests for slim bootstrapping (functional, toy ring).

Precision expectations: toy-scale slim bootstrap carries ~1e-2 absolute
error (sine-approximation systematic error plus CKKS noise amplified by
q0/Delta); the assertions below use that budget.
"""

import numpy as np
import pytest

from repro.ckks import CkksContext, CkksParams
from repro.ckks.bootstrap import BootstrapConfig, Bootstrapper


@pytest.fixture(scope="module")
def ctx():
    params = CkksParams(
        n=64, max_level=14, num_special=2, dnum=15, scale_bits=26,
        secret_hamming_weight=8, name="boot-toy",
    )
    return CkksContext.create(params, seed=7)


@pytest.fixture(scope="module")
def keys(ctx):
    return ctx.keygen(
        rotations=Bootstrapper.required_rotations_for(ctx.params),
        conjugation=True,
    )


@pytest.fixture(scope="module")
def boot(ctx):
    return Bootstrapper(ctx, BootstrapConfig(sine_degree=63, eval_range=4.5))


class TestFullBootstrap:
    def test_refreshes_level(self, ctx, keys, boot):
        vals = np.zeros(ctx.slots)
        vals[:4] = [0.5, -0.25, 0.125, 0.75]
        ct = ctx.encrypt(vals, keys, level=1)
        out = boot.bootstrap(ct, keys)
        assert out.level > ct.level

    def test_preserves_message(self, ctx, keys, boot):
        vals = np.zeros(ctx.slots)
        vals[:4] = [0.5, -0.25, 0.125, 0.75]
        ct = ctx.encrypt(vals, keys, level=1)
        out = boot.bootstrap(ct, keys)
        dec = ctx.decrypt_decode_real(out, keys)
        assert np.max(np.abs(dec - vals)) < 5e-2

    def test_enables_further_multiplication(self, ctx, keys, boot):
        """The point of bootstrapping: multiply after refresh."""
        vals = np.zeros(ctx.slots)
        vals[:3] = [0.5, -0.5, 0.25]
        ct = ctx.encrypt(vals, keys, level=1)
        refreshed = boot.bootstrap(ct, keys)
        sq = ctx.hmult(refreshed, refreshed, keys)
        dec = ctx.decrypt_decode_real(sq, keys)
        assert np.max(np.abs(dec - vals**2)) < 1e-1


class TestStages:
    def test_slot_to_coeff_places_message_in_coefficients(
        self, ctx, keys, boot
    ):
        vals = np.zeros(ctx.slots)
        vals[:4] = [0.5, -0.25, 0.125, 0.75]
        ct = ctx.encrypt(vals, keys, level=1)
        stc = boot.slot_to_coeff(ct, keys)
        coeffs = np.array(
            ctx.evaluator.decrypt_coefficients(stc, keys.secret),
            dtype=float,
        ) / stc.scale
        assert np.max(np.abs(coeffs[: ctx.slots] - vals)) < 1e-3
        assert np.max(np.abs(coeffs[ctx.slots:])) < 1e-3

    def test_mod_raise_adds_q0_multiples(self, ctx, keys, boot):
        vals = np.zeros(ctx.slots)
        vals[0] = 0.5
        ct = ctx.evaluator.level_down(
            boot.slot_to_coeff(ctx.encrypt(vals, keys, level=1), keys), 0
        )
        raised = boot.mod_raise(ct)
        assert raised.level == ctx.params.max_level
        coeffs = np.array(
            ctx.evaluator.decrypt_coefficients(raised, keys.secret),
            dtype=float,
        )
        q0 = ctx.evaluator.q_moduli[0]
        fractional = coeffs / q0 - np.round(coeffs / q0)
        # Integer parts are the I(X) overflow, bounded by ~(h+1)/2.
        assert np.max(np.abs(np.round(coeffs / q0))) <= 4.5
        # Fractional part of coefficient 0 holds the message.
        assert abs(fractional[0] - 0.5 * ct.scale / q0) < 1e-3

    def test_mod_raise_requires_level_zero(self, ctx, keys, boot):
        vals = np.zeros(ctx.slots)
        ct = ctx.encrypt(vals, keys, level=1)
        with pytest.raises(ValueError):
            boot.mod_raise(ct)

    def test_required_rotations(self, ctx, boot):
        rots = Bootstrapper.required_rotations_for(ctx.params)
        # BSGS needs only ~2*sqrt(slots) steps, all covered by the
        # conservative static list.
        assert set(boot.required_rotations()).issubset(set(rots))
        assert len(rots) < ctx.slots
