"""Tests for the canonical-embedding encoder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ckks import Encoder, ParameterSets

PARAMS = ParameterSets.toy()


@pytest.fixture(scope="module")
def encoder():
    return Encoder(PARAMS)


class TestRoundtrip:
    def test_real_values(self, encoder):
        vals = np.array([1.5, -2.25, 3.125, 0.0, 100.0])
        coeffs = encoder.encode(vals)
        decoded = encoder.decode(coeffs.astype(np.float64))
        assert np.max(np.abs(np.real(decoded[:5]) - vals)) < 1e-5
        assert np.max(np.abs(np.imag(decoded[:5]))) < 1e-5

    def test_complex_values(self, encoder):
        vals = np.array([1 + 2j, -0.5 + 0.25j, 3j])
        coeffs = encoder.encode(vals)
        decoded = encoder.decode(coeffs.astype(np.float64))
        assert np.max(np.abs(decoded[:3] - vals)) < 1e-5

    def test_full_slot_vector(self, encoder):
        rng = np.random.default_rng(0)
        vals = rng.normal(size=PARAMS.slots) + 1j * rng.normal(
            size=PARAMS.slots
        )
        err = encoder.roundtrip_error(vals)
        assert err < 1e-5

    def test_coefficients_are_integers(self, encoder):
        coeffs = encoder.encode([1.5, 2.5])
        assert coeffs.dtype == np.int64

    def test_too_many_values(self, encoder):
        with pytest.raises(ValueError):
            encoder.encode(np.ones(PARAMS.slots + 1))

    def test_scale_overflow_detected(self, encoder):
        with pytest.raises(ValueError):
            encoder.encode([1000.0], scale=2.0**60)

    def test_decode_shape_check(self, encoder):
        with pytest.raises(ValueError):
            encoder.decode(np.zeros(16))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        min_size=1, max_size=32,
    ))
    def test_roundtrip_property(self, values):
        encoder = Encoder(PARAMS)
        assert encoder.roundtrip_error(np.array(values)) < 1e-4


class TestLinearity:
    """Encoding is an (approximate) ring homomorphism on slots."""

    def test_additive(self, encoder):
        a = np.array([1.0, 2.0, -3.0])
        b = np.array([0.5, -1.5, 4.0])
        ca = encoder.encode(a)
        cb = encoder.encode(b)
        dec = encoder.decode((ca + cb).astype(np.float64))
        assert np.max(np.abs(np.real(dec[:3]) - (a + b))) < 1e-5

    def test_polynomial_product_is_slotwise_product(self, encoder):
        """Negacyclic coefficient product == slot-wise product of messages
        (the property CKKS computation rests on). Computed over a modulus
        far larger than any product coefficient, so the arithmetic is
        effectively exact integer arithmetic."""
        from repro.ntt import negacyclic_convolution

        q = 1 << 120
        a = np.array([1.5, -2.0, 0.5])
        b = np.array([2.0, 3.0, -1.0])
        ca = np.array([int(c) % q for c in encoder.encode(a)], dtype=object)
        cb = np.array([int(c) % q for c in encoder.encode(b)], dtype=object)
        prod = negacyclic_convolution(ca, cb, q)
        centered = [int(c) - q if int(c) > q // 2 else int(c) for c in prod]
        dec = encoder.decode(centered, scale=PARAMS.scale**2)
        assert np.max(np.abs(np.real(dec[:3]) - a * b)) < 1e-4


class TestConstantEncoding:
    def test_constant_goes_to_coefficient_zero(self, encoder):
        coeffs = encoder.encode(np.full(PARAMS.slots, 2.0))
        assert abs(coeffs[0] - 2 * PARAMS.scale) <= 1
        assert np.max(np.abs(coeffs[1:])) <= 1
