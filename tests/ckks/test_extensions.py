"""Tests for hoisted rotations, noise tracking and serialization."""

import numpy as np
import pytest

from repro.ckks import (
    CkksContext,
    NoiseEstimator,
    ParameterSets,
    deserialize_ciphertext,
    deserialize_plaintext,
    hoisted_rotations,
    measured_noise_bits,
    serialize_ciphertext,
    serialize_plaintext,
)


@pytest.fixture(scope="module")
def ctx():
    return CkksContext.create(ParameterSets.toy(), seed=2)


@pytest.fixture(scope="module")
def keys(ctx):
    return ctx.keygen(rotations=[1, 2, 5])


class TestHoistedRotations:
    def test_matches_plain_rotations(self, ctx, keys):
        vals = np.arange(ctx.slots, dtype=float) / 7
        ct = ctx.encrypt(vals, keys)
        hoisted = hoisted_rotations(ctx.evaluator, ct, [1, 2, 5], keys)
        for step, rct in hoisted.items():
            expected = np.roll(vals, -step)
            got = ctx.decrypt_decode_real(rct, keys)
            assert np.max(np.abs(got - expected)) < 1e-3
            # And agrees with the unhoisted path to within noise.
            plain = ctx.decrypt_decode_real(
                ctx.hrotate(ct, step, keys), keys
            )
            assert np.max(np.abs(got - plain)) < 1e-4

    def test_missing_key_detected(self, ctx, keys):
        ct = ctx.encrypt([1.0], keys)
        with pytest.raises(KeyError):
            hoisted_rotations(ctx.evaluator, ct, [3], keys)

    def test_empty_steps(self, ctx, keys):
        ct = ctx.encrypt([1.0], keys)
        assert hoisted_rotations(ctx.evaluator, ct, [], keys) == {}

    def test_works_at_lower_level(self, ctx, keys):
        vals = np.arange(ctx.slots, dtype=float) / 9
        ct = ctx.evaluator.level_down(ctx.encrypt(vals, keys), 1)
        out = hoisted_rotations(ctx.evaluator, ct, [2], keys)[2]
        got = ctx.decrypt_decode_real(out, keys)
        assert np.max(np.abs(got - np.roll(vals, -2))) < 1e-3


class TestNoiseTracking:
    def test_fresh_estimate_tracks_measurement(self, ctx, keys):
        est = NoiseEstimator(ctx.params)
        vals = np.array([0.5, -0.25, 1.0])
        ct = ctx.encrypt(vals, keys)
        measured = measured_noise_bits(
            ctx.evaluator, ct, keys.secret, vals
        )
        predicted = est.fresh().noise_bits
        assert abs(measured - predicted) < 6, (
            f"measured {measured:.1f} bits vs predicted {predicted:.1f}"
        )

    def test_noise_grows_with_depth(self, ctx, keys):
        vals = np.array([0.5, -0.25, 1.0])
        ct = ctx.encrypt(vals, keys)
        n0 = measured_noise_bits(ctx.evaluator, ct, keys.secret, vals)
        sq = ctx.hmult(ct, ct, keys)
        n1 = measured_noise_bits(
            ctx.evaluator, sq, keys.secret, vals**2
        )
        # Relative noise grows; absolute coefficient noise after rescale
        # stays within a few bits of the fresh level but never collapses.
        assert n1 > 0
        assert n1 > n0 - 8

    def test_budget_decreases_per_level(self):
        params = ParameterSets.toy()
        est = NoiseEstimator(params)
        fresh = est.fresh()
        rescaled = est.rescale(
            est.mult(fresh, fresh)
        )
        assert rescaled.level == fresh.level - params.rescale_primes
        assert rescaled.budget_bits(params) < fresh.budget_bits(params)

    def test_add_combines_variances(self):
        est = NoiseEstimator(ParameterSets.toy())
        a = est.fresh()
        combined = est.add(a, a)
        assert combined.std == pytest.approx(a.std * np.sqrt(2))

    def test_rotation_adds_keyswitch_noise(self):
        est = NoiseEstimator(ParameterSets.toy())
        a = est.fresh()
        assert est.rotate(a).std > a.std


class TestSerialization:
    def test_ciphertext_roundtrip(self, ctx, keys):
        vals = np.array([1.25, -3.5, 0.75])
        ct = ctx.encrypt(vals, keys)
        blob = serialize_ciphertext(ct)
        back = deserialize_ciphertext(blob)
        assert back.level == ct.level
        assert back.scale == ct.scale
        assert np.array_equal(back.c0.data, ct.c0.data)
        # The deserialized ciphertext still decrypts.
        got = ctx.decrypt_decode_real(back, keys)
        assert np.max(np.abs(got[:3] - vals)) < 1e-4

    def test_deserialized_ct_still_computes(self, ctx, keys):
        vals = np.array([2.0, -1.0])
        ct = deserialize_ciphertext(
            serialize_ciphertext(ctx.encrypt(vals, keys))
        )
        sq = ctx.hmult(ct, ct, keys)
        got = ctx.decrypt_decode_real(sq, keys)
        assert np.max(np.abs(got[:2] - vals**2)) < 1e-3

    def test_plaintext_roundtrip(self, ctx):
        pt = ctx.encode([1.0, 2.0, 3.0])
        back = deserialize_plaintext(serialize_plaintext(pt))
        assert np.array_equal(back.poly.data, pt.poly.data)
        assert back.scale == pt.scale

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            deserialize_ciphertext(b"not a ciphertext at all")

    def test_kind_mismatch_rejected(self, ctx, keys):
        blob = serialize_ciphertext(ctx.encrypt([1.0], keys))
        with pytest.raises(ValueError):
            deserialize_plaintext(blob)

    def test_truncation_detected(self, ctx, keys):
        blob = serialize_ciphertext(ctx.encrypt([1.0], keys))
        with pytest.raises(ValueError):
            deserialize_ciphertext(blob[: len(blob) // 2])
