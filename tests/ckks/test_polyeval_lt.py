"""Tests for the polynomial evaluator and linear transforms."""

import numpy as np
import pytest
from numpy.polynomial import chebyshev as npcheb

from repro.ckks import CkksContext, ParameterSets
from repro.ckks.linear_transform import LinearTransform
from repro.ckks.polyeval import PolynomialEvaluator


@pytest.fixture(scope="module")
def ctx():
    return CkksContext.create(ParameterSets.toy(), seed=13)


@pytest.fixture(scope="module")
def keys(ctx):
    steps = sorted(
        set(range(1, 6)) | {5, 10, 15, 20, 25, 30} | {1, 2, 4, 8, 16}
    )
    return ctx.keygen(rotations=steps)


@pytest.fixture(scope="module")
def pe(ctx):
    return PolynomialEvaluator(ctx.evaluator)


class TestChebyshevEvaluation:
    def test_linear_polynomial(self, ctx, keys, pe):
        x = np.array([0.5, -0.3, 0.9, 0.0])
        ct = ctx.encrypt(x, keys)
        # 2*T_0 + 3*T_1 = 2 + 3x
        out = pe.eval_chebyshev(ct, [2.0, 3.0], keys)
        got = ctx.decrypt_decode_real(out, keys)[:4]
        assert np.max(np.abs(got - (2 + 3 * x))) < 1e-3

    def test_t2(self, ctx, keys, pe):
        x = np.array([0.5, -0.3, 0.9, 0.0])
        ct = ctx.encrypt(x, keys)
        out = pe.eval_chebyshev(ct, [0.0, 0.0, 1.0], keys)
        got = ctx.decrypt_decode_real(out, keys)[:4]
        assert np.max(np.abs(got - (2 * x**2 - 1))) < 1e-3

    def test_degree_seven_fit(self):
        # Degree 7 needs ~4 levels; use a deeper toy chain.
        from repro.ckks import CkksParams

        deep = CkksContext.create(
            CkksParams(n=64, max_level=8, num_special=2, dnum=5,
                       scale_bits=26, name="deep-toy"),
            seed=14,
        )
        keys = deep.keygen()
        pe = PolynomialEvaluator(deep.evaluator)
        coeffs = PolynomialEvaluator.chebyshev_fit(np.tanh, 7)
        x = np.linspace(-0.9, 0.9, 8)
        ct = deep.encrypt(x, keys)
        out = pe.eval_chebyshev(ct, coeffs, keys)
        got = deep.decrypt_decode_real(out, keys)[:8]
        reference = npcheb.Chebyshev(coeffs)(x)
        assert np.max(np.abs(got - reference)) < 5e-3

    def test_constant_polynomial(self, ctx, keys, pe):
        ct = ctx.encrypt([0.5], keys)
        out = pe.eval_chebyshev(ct, [1.25], keys)
        got = ctx.decrypt_decode_real(out, keys)[0]
        assert abs(got - 1.25) < 1e-3

    def test_empty_rejected(self, ctx, keys, pe):
        ct = ctx.encrypt([0.5], keys)
        with pytest.raises(ValueError):
            pe.eval_chebyshev(ct, [], keys)


class TestPowerEvaluation:
    def test_cubic(self, ctx, keys, pe):
        x = np.array([0.5, -0.4, 0.25])
        ct = ctx.encrypt(x, keys)
        # 1 + 2x - x^3
        out = pe.eval_power(ct, [1.0, 2.0, 0.0, -1.0], keys)
        got = ctx.decrypt_decode_real(out, keys)[:3]
        assert np.max(np.abs(got - (1 + 2 * x - x**3))) < 2e-3

    def test_agrees_with_chebyshev_form(self, ctx, keys, pe):
        """p(x) = x^2 expressed in both bases gives the same result."""
        x = np.array([0.3, -0.6])
        ct = ctx.encrypt(x, keys)
        power = pe.eval_power(ct, [0.0, 0.0, 1.0], keys)
        cheb = pe.eval_chebyshev(ct, [0.5, 0.0, 0.5], keys)  # (1+T2)/2
        a = ctx.decrypt_decode_real(power, keys)[:2]
        b = ctx.decrypt_decode_real(cheb, keys)[:2]
        assert np.max(np.abs(a - b)) < 2e-3


class TestLinearTransform:
    @pytest.fixture(scope="class")
    def matrix(self, ctx):
        rng = np.random.default_rng(5)
        return (rng.normal(size=(ctx.slots, ctx.slots)) * 0.25
                + 1j * rng.normal(size=(ctx.slots, ctx.slots)) * 0.1)

    def test_bsgs_matches_reference(self, ctx, matrix):
        lt = LinearTransform(ctx, matrix, bsgs=True)
        keys = ctx.keygen(rotations=lt.required_rotations())
        x = np.random.default_rng(6).normal(size=ctx.slots) * 0.5
        ct = ctx.encrypt(x, keys)
        got = ctx.decrypt_decode(lt.apply(ct, keys), keys)
        assert np.max(np.abs(got - matrix @ x)) < 1e-3

    def test_diagonal_matches_reference(self, ctx, matrix):
        lt = LinearTransform(ctx, matrix, bsgs=False)
        keys = ctx.keygen(rotations=lt.required_rotations())
        x = np.random.default_rng(7).normal(size=ctx.slots) * 0.5
        ct = ctx.encrypt(x, keys)
        got = ctx.decrypt_decode(lt.apply(ct, keys), keys)
        assert np.max(np.abs(got - matrix @ x)) < 1e-3

    def test_bsgs_needs_fewer_keys(self, ctx, matrix):
        bsgs = LinearTransform(ctx, matrix, bsgs=True)
        plain = LinearTransform(ctx, matrix, bsgs=False)
        assert (len(bsgs.required_rotations())
                < len(plain.required_rotations()))

    def test_sparse_matrix_skips_zero_diagonals(self, ctx):
        identity = np.eye(ctx.slots, dtype=complex) * 2.0
        lt = LinearTransform(ctx, identity, bsgs=False)
        assert lt.required_rotations() == []  # only diagonal 0
        keys = ctx.keygen()
        x = np.arange(ctx.slots, dtype=float) / 10
        got = ctx.decrypt_decode_real(
            lt.apply(ctx.encrypt(x, keys), keys), keys
        )
        assert np.max(np.abs(got - 2 * x)) < 1e-3

    def test_shape_validation(self, ctx):
        with pytest.raises(ValueError):
            LinearTransform(ctx, np.eye(3))

    def test_zero_matrix_rejected(self, ctx):
        with pytest.raises(ValueError):
            LinearTransform(ctx, np.zeros((ctx.slots, ctx.slots)))
