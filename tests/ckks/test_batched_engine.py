"""Batched RnsPoly arithmetic: bit-exact vs the seed per-row loop path,
plus the unified cache-sizing / zero-recomputation invariants."""

import numpy as np

from repro.ckks import all_cache_stats
from repro.ckks.poly import COEFF, EVAL, RnsPoly, get_reducer
from repro.ckks.rescale import rescale_poly
from repro.ntt import TABLE_CACHE_SIZE, get_tables, negacyclic_intt, negacyclic_ntt
from repro.ntt.negacyclic import apply_automorphism
from repro.numtheory import find_ntt_primes

N = 64
MODULI = tuple(find_ntt_primes(6, 28, N))
NUM_SEEDS = 100


def rand_poly(rng, moduli=MODULI, domain=COEFF):
    data = np.stack(
        [rng.integers(0, q, size=N, dtype=np.uint64) for q in moduli]
    )
    return RnsPoly(data, moduli, domain)


class TestBatchedArithmeticBitExact:
    """Every RnsPoly hot path replays the per-row loop bit-for-bit."""

    def test_add_sub_mul_neg(self):
        for seed in range(NUM_SEEDS):
            rng = np.random.default_rng(seed)
            a, b = rand_poly(rng), rand_poly(rng)
            ae, be = rand_poly(rng, domain=EVAL), rand_poly(rng, domain=EVAL)
            for i, q in enumerate(MODULI):
                red = get_reducer(q)
                assert np.array_equal(
                    (a + b).data[i], red.add_vec(a.data[i], b.data[i])
                )
                assert np.array_equal(
                    (a - b).data[i], red.sub_vec(a.data[i], b.data[i])
                )
                assert np.array_equal(
                    (ae * be).data[i], red.mul_vec(ae.data[i], be.data[i])
                )
                q64 = np.uint64(q)
                row = a.data[i]
                assert np.array_equal(
                    (-a).data[i], np.where(row == 0, row, q64 - row)
                )

    def test_domain_conversion(self):
        for seed in range(NUM_SEEDS):
            rng = np.random.default_rng(500 + seed)
            a = rand_poly(rng)
            e = a.to_eval()
            for i, q in enumerate(MODULI):
                assert np.array_equal(
                    e.data[i], negacyclic_ntt(a.data[i], get_tables(q, N))
                )
            back = e.to_coeff()
            for i, q in enumerate(MODULI):
                assert np.array_equal(
                    back.data[i],
                    negacyclic_intt(e.data[i], get_tables(q, N)),
                )
            assert back == a

    def test_mul_scalar_and_automorphism(self):
        for seed in range(30):
            rng = np.random.default_rng(900 + seed)
            a = rand_poly(rng)
            scalar = int(rng.integers(0, 1 << 40))
            scaled = a.mul_scalar(scalar)
            rotated = a.automorphism(5)
            for i, q in enumerate(MODULI):
                red = get_reducer(q)
                assert np.array_equal(
                    scaled.data[i],
                    red.mul_vec(a.data[i], np.uint64(scalar % q)),
                )
                assert np.array_equal(
                    rotated.data[i], apply_automorphism(a.data[i], 5, q)
                )

    def test_from_signed(self):
        rng = np.random.default_rng(42)
        coeffs = rng.integers(-(1 << 30), 1 << 30, size=N, dtype=np.int64)
        p = RnsPoly.from_signed(coeffs, MODULI)
        for i, q in enumerate(MODULI):
            assert np.array_equal(
                p.data[i], np.mod(coeffs, q).astype(np.uint64)
            )


class TestCacheSizing:
    """Regression for the mismatched-cache bug: get_tables cached 256
    entries while get_reducer cached 512, so deep chains could evict
    twiddle tables mid-operation and silently recompute them."""

    def test_all_caches_share_one_size(self):
        stats = all_cache_stats()
        sizes = {name: s["maxsize"] for name, s in stats.items()}
        assert set(sizes.values()) == {TABLE_CACHE_SIZE}, sizes

    def test_zero_mid_op_recomputation(self):
        """A deep-chain operation run twice must not miss any cache on
        the second run — every table built during the warm run stays
        resident."""
        n = 32
        deep_moduli = tuple(find_ntt_primes(24, 28, n))
        rng = np.random.default_rng(0)

        def op():
            data = np.stack([
                rng.integers(0, q, size=n, dtype=np.uint64)
                for q in deep_moduli
            ])
            a = RnsPoly(data, deep_moduli)
            prod = (a.to_eval() * a.to_eval()).to_coeff()
            lowered, _ = rescale_poly(prod, primes=2)
            return lowered.automorphism(5)

        op()  # warm every cache the op touches
        before = all_cache_stats()
        op()
        after = all_cache_stats()
        for name in before:
            assert after[name]["misses"] == before[name]["misses"], (
                f"{name} cache recomputed mid-op: "
                f"{before[name]} -> {after[name]}"
            )
