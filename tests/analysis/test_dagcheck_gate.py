"""The dagcheck repository gate: catalog clean, mutations killed.

Mirrors the CI invocation (``python -m repro.analysis.dagcheck``) at
unit-test scale: the recorded workloads must verify clean over every
surface, every seeded mutation must be caught by its expected rule, and
the JSON artifact / reproduction-summary plumbing must round-trip.
"""

import json

import pytest

from repro.analysis.dagcheck import (
    CATALOG,
    MUTATIONS,
    check_trace,
    forge,
    run_dagcheck,
)
from repro.analysis.dagcheck.runner import CERT_SLACK


@pytest.fixture(scope="module")
def traces():
    recorders = CATALOG()
    return {name: recorders[name]()
            for name in ("resnet_block", "aes_transcipher")}


@pytest.fixture(scope="module")
def result():
    return run_dagcheck(names=["resnet_block", "aes_transcipher"])


class TestCatalogClean:
    def test_recorded_traces_verify_clean(self, traces):
        for name, t in traces.items():
            found = check_trace(t)
            assert found == [], (
                name + ":\n" + "\n".join(f.render() for f in found))

    def test_full_surface_sweep_is_clean(self, result):
        for name, report in result.reports.items():
            assert report.clean, name
            assert set(report.surfaces) >= {
                "trace", "dag", "dag-hb", "opt-trace", "opt-dag",
                "opt-dag-hb", "sched-search", "sched-search-hb",
            }, (name, report.surfaces)

    def test_certificates_bracket_observed(self, result):
        for name, report in result.reports.items():
            ratio = report.cert_ratio()
            assert ratio is not None, name
            assert 1.0 <= ratio <= CERT_SLACK, (name, ratio)


class TestMutationKills:
    def test_every_forge_is_killed(self, traces):
        for name, (rule, _) in MUTATIONS.items():
            try:
                found = forge(name, traces["resnet_block"])
            except ValueError:
                found = forge(name, traces["aes_transcipher"])
            assert found, f"mutation {name} survived"
            assert {f.rule for f in found} == {rule}

    def test_runner_records_kills(self, result):
        assert set(result.mutation_kills) == set(MUTATIONS)
        assert result.surviving_mutations == []

    def test_unknown_forge_rejected(self, traces):
        with pytest.raises(KeyError):
            forge("no_such_mutation", traces["resnet_block"])


class TestGatePlumbing:
    def test_exit_code_and_json_shape(self, result):
        assert result.exit_code == 0
        data = result.to_json()
        assert data["exit_code"] == 0
        assert data["findings"] == []
        assert data["surviving_mutations"] == []
        assert set(data["rule_counts"]) >= {
            "D-LVL", "D-CEV", "D-SCL", "D-RES",
            "D-KEY", "D-NSE", "D-SCH", "D-HBM",
        }
        for name, cert in data["certificates"].items():
            assert cert["ratio"] is not None, name
            assert 1.0 <= cert["ratio"] <= CERT_SLACK

    def test_injected_finding_fails_gate(self, result):
        from repro.analysis.fhelint.findings import Finding

        report = next(iter(result.reports.values()))
        report.findings.append(Finding(
            rule="D-SCL", path="synthetic", line=1, func="f", message="m"))
        try:
            assert result.exit_code == 1
            github = result.render(fmt="github")
            assert "::error" in github and "D-SCL" in github
        finally:
            report.findings.pop()
        assert result.exit_code == 0

    def test_text_render_mentions_verdict(self, result):
        text = result.render()
        assert "[PASS] dagcheck" in text
        assert "KILLED" in text

    def test_reproduce_summary_folds_artifact(self, result, tmp_path):
        from repro.analysis import dagcheck_gate_summary

        artifact = tmp_path / "ANALYSIS_dagcheck.json"
        result.write_json(str(artifact))
        text = dagcheck_gate_summary(str(artifact))
        assert "dagcheck" in text
        assert "[PASS] dagcheck gate: CLEAN" in text
        data = json.loads(artifact.read_text())
        assert data["exit_code"] == 0


class TestServingIntegration:
    def test_certified_reservation_audits_clean(self):
        from repro.serving.jobs import default_catalog

        for model in ("formula", "certified"):
            catalog = default_catalog(["resnet"], hbm_model=model)
            assert catalog.audit_hbm("resnet", 2) == [], model
            priced = catalog.price("resnet", 2)
            assert priced.certified_hbm_bytes > 0
            if model == "certified":
                assert priced.hbm_bytes == priced.certified_hbm_bytes
            else:
                assert priced.hbm_bytes >= priced.certified_hbm_bytes

    def test_unknown_hbm_model_rejected(self):
        from repro.serving.jobs import default_catalog

        with pytest.raises(ValueError):
            default_catalog(["resnet"], hbm_model="guesswork")
