"""Unit tests for the dagcheck rule families on synthetic traces.

Each rule gets a minimal hand-built trace that violates exactly one
invariant (and a near-identical clean twin), so a regression in one
checker cannot hide behind the catalog workloads all being clean.
"""

import dataclasses

import pytest

from repro.analysis.dagcheck import (
    ScaleMap,
    check_dag_schedule,
    check_hbm_budget,
    check_semantics,
    check_trace_schedule,
    happens_before_certificate,
)
from repro.analysis.dagcheck.memory import HbmCertificate
from repro.trace.ir import OpTrace, TraceEvent


def ev(eid, kind, level=2, deps=(), op=None, shape=None, args=(),
       scale=None, key=()):
    return TraceEvent(
        eid=eid, kind=kind, op=op or f"test/{kind}", span=f"{kind}#{eid}",
        level=level, shape=shape or {}, deps=tuple(deps), args=tuple(args),
        key=tuple(key), scale=scale,
    )


def trace(*events, rotations=None):
    return OpTrace(label="synthetic", n=64, params=None,
                   events=tuple(events), rotations=rotations)


def rules_of(findings):
    return sorted({f.rule for f in findings})


class TestLevelRule:
    def test_level_raise_outside_modraise_flagged(self):
        t = trace(ev(0, "ntt", level=2), ev(1, "intt", level=3, deps=[0]))
        assert rules_of(check_semantics(t)) == ["D-LVL"]

    def test_modraise_span_permits_raise(self):
        t = trace(
            ev(0, "ntt", level=2),
            ev(1, "intt", level=3, deps=[0], op="boot/ModRaise/intt"),
        )
        assert check_semantics(t) == []

    def test_automorphism_prime_count_must_match_level(self):
        t = trace(ev(0, "automorphism", level=2, shape={"primes": 5}))
        assert rules_of(check_semantics(t)) == ["D-LVL"]
        clean = trace(ev(0, "automorphism", level=2, shape={"primes": 3}))
        assert check_semantics(clean) == []

    def test_elementwise_rows_must_tile_polynomials(self):
        t = trace(ev(0, "modmul", level=2, shape={"rows": 4}))
        assert rules_of(check_semantics(t)) == ["D-LVL"]
        clean = trace(ev(0, "modmul", level=2, shape={"rows": 6}))
        assert check_semantics(clean) == []


class TestDomainRule:
    def test_eval_output_into_coeff_consumer_flagged(self):
        # ntt produces eval-domain data; a second ntt needs coeff input.
        t = trace(ev(0, "ntt"), ev(1, "ntt", deps=[0]))
        assert rules_of(check_semantics(t)) == ["D-CEV"]

    def test_roundtrip_is_clean(self):
        t = trace(ev(0, "intt"), ev(1, "ntt", deps=[0]),
                  ev(2, "intt", deps=[1]))
        assert check_semantics(t) == []

    def test_mixed_domain_elementwise_flagged(self):
        t = trace(ev(0, "ntt"), ev(1, "intt"),
                  ev(2, "modadd", deps=[0, 1]))
        assert rules_of(check_semantics(t)) == ["D-CEV"]


class TestScaleRule:
    def test_tagged_addition_with_disagreeing_operand(self):
        t = trace(
            ev(0, "modmul", scale=2.0 ** 40),
            ev(1, "modadd", deps=[0], scale=2.0 ** 41),
        )
        assert rules_of(check_semantics(t)) == ["D-SCL"]

    def test_matching_scales_clean(self):
        t = trace(
            ev(0, "modmul", scale=2.0 ** 40),
            ev(1, "modadd", deps=[0], scale=2.0 ** 40),
        )
        assert check_semantics(t) == []

    def test_scalemap_inherits_unique_dep_scale(self):
        t = trace(
            ev(0, "modmul", scale=2.0 ** 40),
            ev(1, "automorphism", deps=[0], shape={"primes": 3}),
        )
        scales = ScaleMap(t)
        assert scales[1] == 2.0 ** 40

    def test_scalemap_unknown_without_params_divide(self):
        # divide needs the modulus chain to map the scale; params=None
        # must yield unknown, never a guess.
        t = trace(
            ev(0, "modmul", scale=2.0 ** 40),
            ev(1, "divide", deps=[0], shape={"rows": 2, "drop": 1}),
        )
        assert ScaleMap(t)[1] is None


class TestRescaleRule:
    def test_back_to_back_tensor_products_flagged(self):
        t = trace(
            ev(0, "tensor_product", shape={"rows": 3}),
            ev(1, "tensor_product", deps=[0], shape={"rows": 3}),
        )
        assert rules_of(check_semantics(t)) == ["D-RES"]

    def test_divide_on_path_clears_pending(self):
        t = trace(
            ev(0, "tensor_product", shape={"rows": 3}),
            ev(1, "divide", level=2, deps=[0], shape={"rows": 2, "drop": 1}),
            ev(2, "tensor_product", level=1, deps=[1], shape={"rows": 2}),
        )
        assert check_semantics(t) == []

    def test_pending_propagates_through_interior_stages(self):
        t = trace(
            ev(0, "tensor_product", shape={"rows": 3}),
            ev(1, "ntt", deps=[0]),
            ev(2, "tensor_product", deps=[1], shape={"rows": 3}),
        )
        assert "D-RES" in rules_of(check_semantics(t))


class TestKeyRule:
    def test_undeclared_rotation_step_flagged(self):
        t = trace(
            ev(0, "automorphism", shape={"primes": 3}, args=[4]),
            rotations=(1, 2, -1),
        )
        assert rules_of(check_semantics(t)) == ["D-KEY"]

    def test_declared_steps_and_conjugation_clean(self):
        t = trace(
            ev(0, "automorphism", shape={"primes": 3}, args=[2, -1]),
            rotations=(1, 2, -1),
        )
        assert check_semantics(t) == []

    def test_no_declared_set_skips_rule(self):
        t = trace(ev(0, "automorphism", shape={"primes": 3}, args=[99]))
        assert check_semantics(t) == []


class TestScheduleRule:
    def test_trace_order_violation_flagged(self):
        t = trace(ev(1, "ntt", deps=[0]), ev(0, "intt"))
        assert rules_of(check_trace_schedule(t)) == ["D-SCH"]

    def test_program_order_clean(self):
        t = trace(ev(0, "intt"), ev(1, "ntt", deps=[0]))
        assert check_trace_schedule(t) == []


class TestDagSurfaces:
    """DAG-level legality and the happens-before certificate, on the
    real lowered ResNet block (small enough for unit-test budget)."""

    @pytest.fixture(scope="class")
    def lowered(self):
        from repro.trace import lower_trace
        from repro.workloads.recorded import record_resnet_block_trace

        t = record_resnet_block_trace()
        return t, lower_trace(t)

    def test_lowered_dag_is_legal_and_certified(self, lowered):
        t, dag = lowered
        assert check_dag_schedule(dag) == []
        assert happens_before_certificate(dag, t) == []

    def test_forward_dep_flagged(self, lowered):
        _, dag = lowered
        victim = next(i for i, nd in enumerate(dag.nodes) if nd.deps)
        bad_node = dataclasses.replace(
            dag.nodes[victim], deps=(len(dag.nodes) - 1,))
        bad = dataclasses.replace(
            dag, nodes=list(dag.nodes[:victim]) + [bad_node]
            + list(dag.nodes[victim + 1:]))
        assert rules_of(check_dag_schedule(bad)) == ["D-SCH"]

    def test_searched_permutations_stay_certified(self, lowered):
        from repro.trace.opt import schedule_search

        t, dag = lowered
        best, scores = schedule_search(dag)
        assert scores, "schedule_search returned no strategies"
        assert check_dag_schedule(best) == []
        assert happens_before_certificate(best, t) == []


class TestHbmRule:
    def test_undercommitted_budget_flagged(self):
        cert = HbmCertificate(label="j", peak_bytes=2.0 ** 30, node_count=4)
        found = check_hbm_budget("j", 2.0 ** 29, cert)
        assert rules_of(found) == ["D-HBM"]
        assert "certificate" in found[0].message

    def test_sufficient_budget_clean(self):
        cert = HbmCertificate(label="j", peak_bytes=2.0 ** 30, node_count=4)
        assert check_hbm_budget("j", 2.0 ** 30, cert) == []

    def test_certificate_brackets_observed_peak(self):
        from repro.analysis.dagcheck import (
            observed_peak_bytes,
            static_hbm_certificate,
        )
        from repro.analysis.dagcheck.runner import CERT_SLACK
        from repro.trace import lower_trace
        from repro.workloads.recorded import record_resnet_block_trace

        dag = lower_trace(record_resnet_block_trace())
        cert = static_hbm_certificate(dag)
        observed = observed_peak_bytes(dag.run())
        assert observed > 0
        assert observed <= cert.peak_bytes <= CERT_SLACK * observed
