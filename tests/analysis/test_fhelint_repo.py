"""The repository gate: fhelint over the real ``src/`` tree is clean.

This is the same invocation CI runs — every contract the kernels declare
(lazy windows, reducer input ranges, int32 accumulators, representation
tags, frozen plans) is re-proven on every run, so a regression in any
annotated kernel fails here before it fails numerically.
"""

from pathlib import Path

from repro.analysis.fhelint.runner import run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def test_repo_src_is_clean():
    result = run_lint([str(SRC)])
    assert result.active == [], "\n".join(
        f.render() for f in result.active
    )


def test_coverage_is_nontrivial():
    """The gate means nothing if nothing is annotated: the run must
    actually interpret a substantial number of @bounded kernels."""
    result = run_lint([str(SRC)])
    assert result.files_checked > 50
    assert result.functions_checked >= 20


def test_json_report_shape():
    result = run_lint([str(SRC)])
    report = result.to_json()
    assert report["tool"] == "fhelint"
    assert report["exit_code"] == 0
    assert report["active"] == 0
    assert set(report["counts"]) >= {"B-LAZY", "B-RED", "A-VIEW", "K-VAL"}


def test_reproduce_summary_folds_artifact(tmp_path):
    import json

    from repro.analysis import lint_gate_summary
    from repro.analysis.fhelint.runner import write_json

    artifact = tmp_path / "ANALYSIS_lint.json"
    write_json(run_lint([str(SRC)]), str(artifact))
    text = lint_gate_summary(str(artifact))
    assert "fhelint" in text
    assert "[PASS] fhelint gate: CLEAN" in text
    data = json.loads(artifact.read_text())
    assert data["active"] == 0
