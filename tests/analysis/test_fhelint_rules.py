"""Per-rule fixture tests for fhelint.

Each test writes a minimal kernel snippet that violates exactly one
invariant, runs the real lint driver over it and asserts the expected
rule fires (and that the clean twin of the snippet does not). These are
the "deliberately break a bound" acceptance cases: an 8q butterfly
store, a wrapping int32 accumulator, an aliased view return, a frozen
plan mutation and friends must all exit non-zero.
"""

import textwrap

from repro.analysis.fhelint.findings import Baseline
from repro.analysis.fhelint.runner import run_lint


def lint_source(tmp_path, source, rel="fixture.py", baseline=None):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return run_lint([str(tmp_path)], baseline)


def active_rules(result):
    return {f.rule for f in result.active}


# -- B-xxx: width/bounds ------------------------------------------------------


class TestBoundsRules:
    def test_lazy_store_outside_window_flags(self, tmp_path):
        result = lint_source(tmp_path, """
            from repro.analysis.annotations import bounded

            @bounded(in_q=2, max_q_multiple=4, params={"a": {"q": 2}})
            def bad_butterfly(a):
                a[0] = a[0] + a[0] + a[0] + a[0]
                return a
            """)
        assert "B-LAZY" in active_rules(result)
        assert result.exit_code == 1

    def test_lazy_store_inside_window_clean(self, tmp_path):
        result = lint_source(tmp_path, """
            from repro.analysis.annotations import bounded

            @bounded(in_q=2, max_q_multiple=4, params={"a": {"q": 2}})
            def ok_butterfly(a):
                a[0] = a[0] + a[0]
                return a
            """)
        assert "B-LAZY" not in active_rules(result)

    def test_output_bound_violation_flags(self, tmp_path):
        result = lint_source(tmp_path, """
            from repro.analysis.annotations import bounded

            @bounded(out_q=1, params={"x": {"q": 1}})
            def doubled(x):
                return x + x
            """)
        assert "B-OUT" in active_rules(result)

    def test_provable_argument_violation_flags(self, tmp_path):
        result = lint_source(tmp_path, """
            from repro.analysis.annotations import bounded

            @bounded(in_q=2, out_q=2, params={"x": {"q": 2}})
            def lazy_identity(x):
                return x

            @bounded(params={"y": {"q": 1}})
            def caller(y):
                big = y + y + y + y
                return lazy_identity(big)
            """)
        assert "B-ARG" in active_rules(result)

    def test_reducer_fed_beyond_proven_range_flags(self, tmp_path):
        result = lint_source(tmp_path, """
            from repro.analysis.annotations import bounded

            class FakeReducer:
                @bounded(assume=True, out_q=1,
                         params={"t": {"ubound": 1 << 62}})
                def reduce_mat(self, t):
                    return t

            @bounded(params={"x": {"q": 1}})
            def fold(x, r: FakeReducer):
                t = (x * x) * (x * x)
                return r.reduce_mat(t)
            """)
        assert "B-RED" in active_rules(result)

    def test_reducer_fed_proven_range_clean(self, tmp_path):
        result = lint_source(tmp_path, """
            from repro.analysis.annotations import bounded

            class FakeReducer:
                @bounded(assume=True, out_q=1,
                         params={"t": {"ubound": 1 << 62}})
                def reduce_mat(self, t):
                    return t

            @bounded(out_q=1, params={"x": {"q": 1}})
            def fold(x, r: FakeReducer):
                t = x * x
                return r.reduce_mat(t)
            """)
        assert result.active == []

    def test_int32_accumulator_overflow_flags(self, tmp_path):
        # 2**12 * 2**12 products over 2**15 lanes reach 2**39: far past
        # the int32 tensor-core accumulator.
        result = lint_source(tmp_path, """
            from repro.analysis.annotations import bounded

            @bounded(dtype="int32", max_lanes=1 << 15,
                     params={"x": {"ubound": 1 << 12},
                             "w": {"ubound": 1 << 12}})
            def gemm(x, w):
                return x @ w
            """)
        assert "B-OVF" in active_rules(result)

    def test_int32_accumulator_in_capacity_clean(self, tmp_path):
        # 2**8 * 2**8 over 2**12 lanes peaks at 2**28 < 2**31.
        result = lint_source(tmp_path, """
            from repro.analysis.annotations import bounded

            @bounded(dtype="int32", max_lanes=1 << 12,
                     params={"x": {"ubound": 1 << 8},
                             "w": {"ubound": 1 << 8}})
            def gemm(x, w):
                return x @ w
            """)
        assert result.active == []

    def test_unbounded_reduction_axis_flags(self, tmp_path):
        result = lint_source(tmp_path, """
            from repro.analysis.annotations import bounded

            @bounded(params={"x": {"bits": 31}, "w": {"bits": 31}})
            def dot(x, w):
                return (x * w).sum(axis=1)
            """)
        assert "B-ACC" in active_rules(result)

    def test_object_dtype_flags(self, tmp_path):
        result = lint_source(tmp_path, """
            import numpy as np

            def widen(x):
                return x.astype(object) * 2
            """)
        assert "B-OBJ" in active_rules(result)

    def test_narrowing_astype_in_numeric_roots_flags(self, tmp_path):
        result = lint_source(tmp_path, """
            def truncate(x):
                return x.astype("int32")
            """, rel="repro/ntt/fixture.py")
        assert "B-OVF" in active_rules(result)


# -- D-xxx: representation tags ----------------------------------------------


class TestDomainRules:
    def test_eval_into_coeff_consumer_flags(self, tmp_path):
        result = lint_source(tmp_path, """
            from repro.analysis.annotations import eval_form, takes_form

            @eval_form
            def ntt(x):
                return x

            @takes_form(x="coeff")
            def automorphism(x):
                return x

            def pipeline(p):
                y = ntt(p)
                return automorphism(y)
            """)
        assert "D-FORM" in active_rules(result)

    def test_matched_forms_clean(self, tmp_path):
        result = lint_source(tmp_path, """
            from repro.analysis.annotations import (
                coeff_form, eval_form, takes_form,
            )

            @coeff_form
            def intt(x):
                return x + 0

            @eval_form
            @takes_form(x="coeff")
            def ntt(x):
                return x + 0

            def pipeline(p):
                y = intt(p)
                return ntt(y)
            """)
        assert result.active == []

    def test_montgomery_into_standard_consumer_flags(self, tmp_path):
        result = lint_source(tmp_path, """
            from repro.analysis.annotations import (
                montgomery_domain, takes_domain,
            )

            @montgomery_domain
            def to_mont(x):
                return x

            @takes_domain(x="standard")
            def plain_add(x):
                return x

            def pipeline(p):
                y = to_mont(p)
                return plain_add(y)
            """)
        assert "D-DOM" in active_rules(result)


# -- A-xxx: aliasing / purity -------------------------------------------------


class TestAliasRules:
    def test_view_return_of_self_buffer_flags(self, tmp_path):
        result = lint_source(tmp_path, """
            import numpy as np

            class TwiddleCache:
                def __init__(self, n):
                    self.table = np.zeros(n)

                def first_half(self):
                    return self.table[: len(self.table) // 2]
            """)
        assert "A-VIEW" in active_rules(result)

    def test_copied_return_clean(self, tmp_path):
        result = lint_source(tmp_path, """
            import numpy as np

            class TwiddleCache:
                def __init__(self, n):
                    self.table = np.zeros(n)

                def first_half(self):
                    return self.table[: len(self.table) // 2].copy()
            """)
        assert "A-VIEW" not in active_rules(result)

    def test_returns_view_blessing_suppresses(self, tmp_path):
        result = lint_source(tmp_path, """
            import numpy as np
            from repro.analysis.annotations import returns_view

            class TwiddleCache:
                def __init__(self, n):
                    self.table = np.zeros(n)

                @returns_view
                def first_half(self):
                    return self.table[: len(self.table) // 2]
            """)
        assert "A-VIEW" not in active_rules(result)

    def test_frozen_plan_self_mutation_flags(self, tmp_path):
        result = lint_source(tmp_path, """
            from repro.analysis.annotations import frozen

            @frozen
            class Plan:
                def __init__(self):
                    self.table = [1]

                def corrupt(self):
                    self.table[0] = 2
            """)
        assert "A-FROZEN" in active_rules(result)

    def test_frozen_plan_external_mutation_flags(self, tmp_path):
        # The instance comes back from a call whose return annotation
        # names the frozen class — no local annotation needed.
        result = lint_source(tmp_path, """
            from repro.analysis.annotations import frozen

            @frozen
            class Plan:
                def __init__(self):
                    self.table = [1]

            def compile_plan() -> Plan:
                return Plan()

            def misuse():
                plan = compile_plan()
                plan.table[0] = 3
                return plan
            """)
        assert "A-FROZEN" in active_rules(result)

    def test_frozen_plan_ctor_writes_clean(self, tmp_path):
        result = lint_source(tmp_path, """
            from repro.analysis.annotations import frozen

            @frozen
            class Plan:
                def __init__(self):
                    self.table = [1]
                    self.table[0] = 2
            """)
        assert "A-FROZEN" not in active_rules(result)


# -- K-xxx: kernel descriptors ------------------------------------------------


class TestKernelRules:
    def test_unvalidated_kernelspec_flags(self, tmp_path):
        result = lint_source(tmp_path, """
            from repro.gpusim import KernelSpec

            def lower():
                return KernelSpec(name="ntt", blocks=64, warps_per_block=8)
            """)
        assert "K-VAL" in active_rules(result)

    def test_validated_kernelspec_clean(self, tmp_path):
        result = lint_source(tmp_path, """
            from repro.gpusim import KernelSpec

            def lower():
                return KernelSpec(
                    name="ntt", blocks=64, warps_per_block=8
                ).validate()
            """)
        assert "K-VAL" not in active_rules(result)


# -- suppression mechanics ----------------------------------------------------


class TestSuppression:
    SOURCE = """
        from repro.analysis.annotations import bounded

        @bounded(out_q=1, params={"x": {"q": 1}})
        def doubled(x):
            return x + xWAIVER
        """

    def test_inline_waiver_suppresses(self, tmp_path):
        flagged = lint_source(tmp_path, self.SOURCE.replace("WAIVER", ""))
        assert flagged.exit_code == 1
        waived = lint_source(
            tmp_path,
            self.SOURCE.replace("WAIVER", "  # fhelint: allow-B-OUT"),
            rel="waived.py",
        )
        assert not [f for f in waived.active
                    if f.path.endswith("waived.py")]

    def test_baseline_covers_but_does_not_gate(self, tmp_path):
        first = lint_source(tmp_path, self.SOURCE.replace("WAIVER", ""))
        assert first.exit_code == 1
        baseline = Baseline.from_findings(first.findings)
        second = lint_source(
            tmp_path, self.SOURCE.replace("WAIVER", ""), baseline=baseline
        )
        assert second.exit_code == 0
        assert any(f.baselined for f in second.findings)
