"""Tests for the reporting helpers and the CLI summary."""

import pytest

from repro.analysis import (
    format_table,
    kops_from_us,
    paper_vs_measured,
    shape_check,
    speedup_row,
    us_from_kops,
    within_factor,
)


class TestFormatTable:
    def test_basic_shape(self):
        text = format_table(
            ["name", "a", "b"], [["row1", 1.5, None], ["row2", 12345.6, 7]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "row1" in text and "12,346" in text
        assert "-" in text  # None renders as dash

    def test_float_formatting(self):
        text = format_table(["x", "v"], [["a", 0.1234], ["b", 42.0]])
        assert "0.12" in text
        assert "42.0" in text

    def test_speedup_row(self):
        row = speedup_row("sp", {"a": 10.0, "b": 0}, {"a": 5.0, "b": 3.0},
                          ["a", "b"])
        assert row == ["sp", "2.00x", None]

    def test_paper_vs_measured(self):
        line = paper_vs_measured("thing", 100.0, 150.0, unit="us")
        assert "x1.50" in line
        assert "paper" in line

    def test_paper_vs_measured_missing(self):
        line = paper_vs_measured("thing", None, 5.0)
        assert "paper: -" in line

    def test_shape_check(self):
        assert shape_check("claim", True).startswith("[PASS]")
        assert shape_check("claim", False).startswith("[FAIL]")


class TestMetrics:
    def test_kops_roundtrip(self):
        assert kops_from_us(us_from_kops(3.5)) == pytest.approx(3.5)

    def test_kops_values(self):
        assert kops_from_us(1000.0) == pytest.approx(1.0)
        assert us_from_kops(1.0) == pytest.approx(1000.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            kops_from_us(0)
        with pytest.raises(ValueError):
            us_from_kops(-1)

    def test_within_factor(self):
        assert within_factor(10, 20, 2.0)
        assert within_factor(40, 20, 2.0)
        assert not within_factor(50, 20, 2.0)
        assert not within_factor(0, 20, 2.0)


class TestReproduceCli:
    def test_main_runs_and_prints(self, capsys):
        from repro.reproduce import main

        assert main([]) == 0
        out = capsys.readouterr().out
        assert "Table VII" in out
        assert "wd-fuse" in out
        assert "HMULT" in out
