"""Bit-exactness parity between the numpy reference and the optional
accelerated backends.

Every property here asserts *exact* uint64 equality: the backend contract
is canonical-value equality, not numerical closeness. The numba module is
skipped cleanly when numba is not importable (the CI numpy-only leg), and
likewise for cupy.
"""

import importlib.util

import numpy as np
import pytest

from repro.backend import resolve_backend, use_backend
from repro.ckks import CkksContext, ParameterSets
from repro.ckks.poly import RnsPoly
from repro.ntt.stacked import (
    get_shoup_stack,
    stacked_negacyclic_intt,
    stacked_negacyclic_ntt,
)
from repro.numtheory import find_ntt_primes
from repro.numtheory.barrett import BatchBarrettReducer
from repro.numtheory.montgomery import BatchMontgomeryReducer

HAVE_NUMBA = importlib.util.find_spec("numba") is not None
HAVE_CUPY = importlib.util.find_spec("cupy") is not None

N = 128
MODULI = tuple(find_ntt_primes(3, 30, N))
RADIX = 1 << 32


def _rng():
    return np.random.default_rng(0xBACCE17)


def _residues(rng, rows=len(MODULI), cols=N):
    return np.stack([
        rng.integers(0, q, size=cols, dtype=np.uint64)
        for q in MODULI[:rows]
    ])


def _accelerated(name):
    """Construct the named backend, failing loudly (not falling back) if
    its self-check rejects it — parity is the point of this suite."""
    backend = resolve_backend(name)
    if backend.name != name:
        pytest.fail(f"backend {name!r} importable but failed construction")
    return backend


class BackendParitySuite:
    """Shared parity properties; subclasses pin ``backend_name``."""

    backend_name = None

    @pytest.fixture()
    def backend(self):
        return _accelerated(self.backend_name)

    # ---- reducers -------------------------------------------------------

    def test_barrett_ops_match(self, backend):
        rng = _rng()
        red = BatchBarrettReducer(MODULI)
        a, b = _residues(rng), _residues(rng)
        t = np.stack([rng.integers(0, int(q) * int(q), size=N,
                                   dtype=np.uint64) for q in MODULI])
        ref = {}
        for op, args in [("reduce_mat", (t,)), ("mul_mat", (a, b)),
                         ("add_mat", (a, b)), ("sub_mat", (a, b)),
                         ("neg_mat", (a,))]:
            ref[op] = getattr(red, op)(*args)
            with use_backend(backend):
                got = getattr(red, op)(*args)
            np.testing.assert_array_equal(got, ref[op], err_msg=op)

    def test_montgomery_ops_match(self, backend):
        rng = _rng()
        red = BatchMontgomeryReducer(MODULI)
        a, b = _residues(rng), _residues(rng)
        t = np.stack([rng.integers(0, int(q) * RADIX, size=N,
                                   dtype=np.uint64) for q in MODULI])
        for op, args in [("reduce_mat", (t,)), ("mul_mat", (a, b)),
                         ("to_montgomery_mat", (a,)),
                         ("from_montgomery_mat", (a,))]:
            want = getattr(red, op)(*args)
            with use_backend(backend):
                got = getattr(red, op)(*args)
            np.testing.assert_array_equal(got, want, err_msg=op)

    # ---- stacked transforms --------------------------------------------

    def test_stacked_ntt_roundtrip_matches(self, backend):
        rng = _rng()
        stack = get_shoup_stack(MODULI, N)
        x = _residues(rng)
        fwd = stacked_negacyclic_ntt(x, stack)
        inv = stacked_negacyclic_intt(fwd, stack)
        with use_backend(backend):
            fwd_b = stacked_negacyclic_ntt(x, stack)
            inv_b = stacked_negacyclic_intt(fwd_b, stack)
        np.testing.assert_array_equal(fwd_b, fwd)
        np.testing.assert_array_equal(inv_b, inv)
        np.testing.assert_array_equal(inv_b, x)

    def test_stacked_ntt_t_out_matches(self, backend):
        rng = _rng()
        stack = get_shoup_stack(MODULI, N)
        batch = np.stack([_residues(rng), _residues(rng)], axis=1)
        want = stacked_negacyclic_ntt(batch, stack, t_out=True)
        with use_backend(backend):
            got = stacked_negacyclic_ntt(batch, stack, t_out=True)
        np.testing.assert_array_equal(got, want)

    def test_stacked_ntt_lazy_is_congruent(self, backend):
        # lazy=True representatives are backend-specific; the contract is
        # congruence mod q, bound < 2**32, and identical canonicalization.
        rng = _rng()
        stack = get_shoup_stack(MODULI, N)
        x = _residues(rng)
        q_col = np.array(MODULI, dtype=np.uint64)[:, None]
        want = stacked_negacyclic_ntt(x, stack)
        with use_backend(backend):
            lazy = stacked_negacyclic_ntt(x, stack, lazy=True)
        assert lazy.max() < 1 << 32
        np.testing.assert_array_equal(lazy % q_col, want)

    # ---- RnsPoly end-to-end --------------------------------------------

    def test_rns_poly_arithmetic_matches(self, backend):
        rng = _rng()
        a = RnsPoly(_residues(rng), MODULI, "eval")
        b = RnsPoly(_residues(rng), MODULI, "eval")
        acc = RnsPoly(_residues(rng), MODULI, "eval")
        ref = {
            "add": (a + b).data,
            "sub": (a - b).data,
            "neg": (-a).data,
            "mul": (a * b).data,
            "fma": acc.copy().fma_(a, b).data,
            "scalar": a.mul_scalar(12345).data,
        }
        with use_backend(backend):
            np.testing.assert_array_equal((a + b).data, ref["add"])
            np.testing.assert_array_equal((a - b).data, ref["sub"])
            np.testing.assert_array_equal((-a).data, ref["neg"])
            np.testing.assert_array_equal((a * b).data, ref["mul"])
            np.testing.assert_array_equal(
                acc.copy().fma_(a, b).data, ref["fma"])
            np.testing.assert_array_equal(
                a.mul_scalar(12345).data, ref["scalar"])

    def test_rns_poly_domain_conversion_matches(self, backend):
        rng = _rng()
        p = RnsPoly(_residues(rng), MODULI, "coeff")
        want_eval = p.to_eval().data
        with use_backend(backend):
            got_eval = p.to_eval()
            got_back = got_eval.to_coeff()
        np.testing.assert_array_equal(got_eval.data, want_eval)
        np.testing.assert_array_equal(got_back.data, p.data)

    # ---- keyswitch end-to-end ------------------------------------------

    def test_keyswitch_end_to_end_matches(self, backend):
        # Encrypt once (encryption is randomized), then run the full
        # hmult pipeline — NTT, ModUp, InnerProduct, ModDown, rescale —
        # under each backend on the same ciphertext. Deterministic, so
        # the outputs must be bit-identical.
        ctx = CkksContext.create(ParameterSets.toy(), seed=11)
        keys = ctx.keygen(rotations=[1])
        vals = np.linspace(-1.0, 1.0, 8)
        ct = ctx.encrypt(vals, keys)
        prod = ctx.hmult(ct, ct, keys)
        rot = ctx.hrotate(ct, 1, keys)
        with use_backend(backend):
            prod_b = ctx.hmult(ct, ct, keys)
            rot_b = ctx.hrotate(ct, 1, keys)
        np.testing.assert_array_equal(prod_b.c0.data, prod.c0.data)
        np.testing.assert_array_equal(prod_b.c1.data, prod.c1.data)
        np.testing.assert_array_equal(rot_b.c0.data, rot.c0.data)
        np.testing.assert_array_equal(rot_b.c1.data, rot.c1.data)


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not importable")
class TestNumbaParity(BackendParitySuite):
    backend_name = "numba"


@pytest.mark.skipif(not HAVE_CUPY, reason="cupy not importable")
class TestCupyParity(BackendParitySuite):
    backend_name = "cupy"
