"""Backend selection, fallback and self-check gating."""

import os
import warnings

import numpy as np
import pytest

import repro.backend as B
from repro.backend import (
    ArrayBackend,
    BackendUnavailable,
    NumpyBackend,
    available_backends,
    backend_name,
    resolve_backend,
    set_backend,
    use_backend,
)


@pytest.fixture(autouse=True)
def _restore_backend():
    yield
    os.environ.pop(B.BACKEND_ENV, None)
    set_backend(None)


def test_default_backend_is_numpy():
    os.environ.pop(B.BACKEND_ENV, None)
    set_backend(None)
    assert backend_name() == "numpy"
    assert isinstance(B.active_backend(), NumpyBackend)


def test_numpy_always_available():
    avail = available_backends()
    assert avail["numpy"] is True
    assert set(avail) == {"numpy", "numba", "cupy"}


def test_env_var_selects_backend():
    os.environ[B.BACKEND_ENV] = "numpy"
    backend = resolve_backend()
    assert backend.name == "numpy"


def test_unknown_name_falls_back_with_warning():
    with pytest.warns(RuntimeWarning, match="falling back to numpy"):
        backend = resolve_backend("no-such-backend-ever")
    assert backend.name == "numpy"


def test_unknown_name_raises_internally():
    with pytest.raises(BackendUnavailable, match="unknown backend"):
        B.base._construct("no-such-backend-ever")


def test_unavailable_backend_falls_back_with_warning():
    missing = [n for n, ok in available_backends().items() if not ok]
    if not missing:
        pytest.skip("every optional backend is installed here")
    with pytest.warns(RuntimeWarning, match="falling back to numpy"):
        backend = resolve_backend(missing[0])
    assert backend.name == "numpy"


def test_env_var_fallback_never_raises():
    missing = [n for n, ok in available_backends().items() if not ok]
    if not missing:
        pytest.skip("every optional backend is installed here")
    os.environ[B.BACKEND_ENV] = missing[0]
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        backend = set_backend(None)
    assert backend.name == "numpy"


def test_auto_resolves_to_something_working():
    backend = resolve_backend("auto")
    assert isinstance(backend, ArrayBackend)
    backend.self_check()


def test_use_backend_restores_previous():
    before = backend_name()
    with use_backend("numpy") as installed:
        assert backend_name() == "numpy"
        assert installed is B.active_backend()
    assert backend_name() == before


def test_set_backend_accepts_instance():
    inst = NumpyBackend()
    assert set_backend(inst) is inst
    assert B.active_backend() is inst


def test_self_check_rejects_wrong_arithmetic():
    class Broken(NumpyBackend):
        name = "broken"

        def mod_add(self, a, b, q):
            out = super().mod_add(a, b, q)
            return out ^ np.uint64(1)  # corrupt one bit

    with pytest.raises(BackendUnavailable, match="mod_add"):
        Broken().self_check()


def test_self_check_rejects_wrong_transform():
    class Broken(NumpyBackend):
        name = "broken-ntt"

        def ntt_forward(self, x, stack, *, lazy=False, t_out=False):
            out = super().ntt_forward(x, stack, lazy=lazy, t_out=t_out)
            out[..., 0] += np.uint64(1)
            return out

    with pytest.raises(BackendUnavailable, match="ntt"):
        Broken().self_check()


def test_interface_methods_are_abstract():
    be = ArrayBackend()
    q = np.array([97], dtype=np.uint64)
    a = np.zeros((1, 4), dtype=np.uint64)
    for call in [
        lambda: be.mod_add(a, a, q),
        lambda: be.mod_sub(a, a, q),
        lambda: be.mod_neg(a, q),
        lambda: be.mod_reduce(a, q),
        lambda: be.mod_mul(a, a, q),
        lambda: be.montgomery_reduce(a, q, q),
        lambda: be.montgomery_mul(a, a, q, q),
        lambda: be.ntt_forward(a, None),
        lambda: be.ntt_inverse(a, None),
        lambda: be.wide_dot(a, a, q),
    ]:
        with pytest.raises(NotImplementedError):
            call()
