"""Dependency-aware DAG scheduling on the shared SM array."""

import pytest

from repro.gpusim import A100_PCIE_80G, DagKernel, KernelSpec, run_dag, \
    run_serial, simulate_kernel

DEV = A100_PCIE_80G


def kernel(name, blocks=8, **kw):
    kw.setdefault("int32_ops", 1e7)
    kw.setdefault("gmem_read_bytes", 1e6)
    return KernelSpec(name=name, blocks=blocks, warps_per_block=8, **kw)


def entries_by_index(result):
    return {e.index: e for e in result.entries}


class TestDependencies:
    def test_chain_serializes(self):
        nodes = [
            DagKernel(kernel("a")),
            DagKernel(kernel("b"), deps=(0,)),
            DagKernel(kernel("c"), deps=(1,)),
        ]
        res = run_dag(nodes, DEV)
        e = entries_by_index(res)
        assert e[1].start_us >= e[0].end_us - 1e-9
        assert e[2].start_us >= e[1].end_us - 1e-9

    def test_independent_small_kernels_overlap(self):
        nodes = [DagKernel(kernel(f"k{i}", blocks=4)) for i in range(4)]
        res = run_dag(nodes, DEV)
        starts = {e.start_us for e in res.entries}
        assert starts == {0.0}
        single = simulate_kernel(kernel("k0", blocks=4), DEV).elapsed_us
        assert res.elapsed_us == pytest.approx(single)

    def test_diamond_joins_on_both_parents(self):
        nodes = [
            DagKernel(kernel("src", blocks=4)),
            DagKernel(kernel("left", blocks=4), deps=(0,)),
            DagKernel(kernel("right", blocks=4, int32_ops=5e7), deps=(0,)),
            DagKernel(kernel("join", blocks=4), deps=(1, 2)),
        ]
        res = run_dag(nodes, DEV)
        e = entries_by_index(res)
        assert e[3].start_us >= max(e[1].end_us, e[2].end_us) - 1e-9

    def test_entries_carry_index_and_deps(self):
        nodes = [DagKernel(kernel("a")), DagKernel(kernel("b"), deps=(0,))]
        res = run_dag(nodes, DEV)
        e = entries_by_index(res)
        assert e[1].deps == (0,)

    def test_forward_dependency_rejected(self):
        nodes = [DagKernel(kernel("a"), deps=(1,)), DagKernel(kernel("b"))]
        with pytest.raises(ValueError, match="topological"):
            run_dag(nodes, DEV)

    def test_self_dependency_rejected(self):
        with pytest.raises(ValueError, match="topological"):
            run_dag([DagKernel(kernel("a"), deps=(0,))], DEV)


class TestSmCapacity:
    def test_full_grid_kernels_serialize(self):
        # Independent in the graph, but each grid fills every SM
        # (§III-A: multi-stream launches of FHE-size grids degenerate to
        # serial execution).
        big = kernel("big", blocks=4 * DEV.sm_count)
        res = run_dag([DagKernel(big), DagKernel(big)], DEV)
        ends = sorted(e.end_us for e in res.entries)
        single = simulate_kernel(big, DEV).elapsed_us
        assert ends[1] == pytest.approx(2 * single)

    def test_half_grid_kernels_overlap(self):
        half = kernel("half", blocks=DEV.sm_count // 2)
        res = run_dag([DagKernel(half), DagKernel(half)], DEV)
        assert {e.start_us for e in res.entries} == {0.0}

    def test_matches_run_serial_for_linear_chain(self):
        specs = [kernel(f"k{i}", blocks=2048 + 512 * i) for i in range(5)]
        nodes = [DagKernel(s, deps=(i - 1,) if i else ())
                 for i, s in enumerate(specs)]
        dag_res = run_dag(nodes, DEV)
        serial_res = run_serial(specs, DEV)
        assert dag_res.elapsed_us == pytest.approx(serial_res.elapsed_us)

    def test_dag_never_beats_critical_path(self):
        nodes = [DagKernel(kernel(f"k{i}", blocks=16)) for i in range(6)]
        nodes.append(DagKernel(kernel("tail", blocks=16),
                               deps=tuple(range(6))))
        res = run_dag(nodes, DEV)
        tail = entries_by_index(res)[6]
        assert res.elapsed_us == pytest.approx(tail.end_us)
        critical = (simulate_kernel(kernel("k0", blocks=16), DEV).elapsed_us
                    + simulate_kernel(kernel("tail", blocks=16),
                                      DEV).elapsed_us)
        assert res.elapsed_us >= critical - 1e-9

    def test_deterministic(self):
        nodes = [DagKernel(kernel(f"k{i}", blocks=32 + i)) for i in range(8)]
        a = run_dag(nodes, DEV)
        b = run_dag(nodes, DEV)
        assert [(e.index, e.start_us) for e in a.entries] == \
               [(e.index, e.start_us) for e in b.entries]
