"""Trace-DAG optimizer: per-pass legality, replay parity, regressions.

The machine-checkable contract of every pass (DESIGN.md §12): data
dependencies preserved, per-kind work accounting conserved, and — via
the replay-token construction of :mod:`repro.trace.opt.replay` —
bit-identical replay of the surviving primitive events.  The pipeline
enforces all three after every pass (``verify=True``); the tests here
additionally assert them from first principles so a verifier bug cannot
hide an optimizer bug.
"""

import numpy as np
import pytest

from repro.ckks import CkksContext
from repro.ckks.bootstrap import BootstrapConfig, Bootstrapper
from repro.ckks.hoisting import hoisted_rotations
from repro.ckks.params import ParameterSets
from repro.gpusim import profile_cache_stats, run_dag
from repro.trace import lower_trace, validate_trace
from repro.trace.ir import OpTrace, TraceEvent
from repro.trace.opt import (
    FoldTwistPass,
    FuseElementwisePass,
    MergeLaunchesPass,
    OptimizationError,
    PassPipeline,
    PoolReorderPass,
    RotationDedupPass,
    default_passes,
    event_work,
    observed_rotation_steps,
    optimize_trace,
    permute_dag,
    primitive_events,
    replay_tokens,
    schedule_search,
    trace_pool_peak_rows,
    work_counts,
)
from repro.trace.recorder import record
from repro.workloads import proxy_params_for, record_bootstrap_trace

PARAMS = ParameterSets.small()


@pytest.fixture(scope="module")
def setup():
    ctx = CkksContext.create(PARAMS, seed=3)
    keys = ctx.keygen(rotations=[1, 2, 3])
    vals = np.zeros(ctx.slots)
    vals[:2] = [0.5, -0.25]
    ct = ctx.encrypt(vals, keys)
    ct2 = ctx.encrypt(vals, keys)
    return ctx, keys, ct, ct2


@pytest.fixture(scope="module")
def hmult_trace(setup):
    ctx, keys, ct, ct2 = setup
    with record("hmult", params=PARAMS) as rec:
        ctx.evaluator.hmult(ct, ct2, keys)
    return rec.trace


@pytest.fixture(scope="module")
def hoisted_trace(setup):
    ctx, keys, ct, _ = setup
    with record("hoisted", params=PARAMS) as rec:
        hoisted_rotations(ctx.evaluator, ct, [1, 2, 3], keys)
    return rec.trace


@pytest.fixture(scope="module")
def boot_trace():
    return record_bootstrap_trace()


RECORDINGS = ("hmult_trace", "hoisted_trace", "boot_trace")


def assert_replay_parity(before: OpTrace, after: OpTrace, removed=()):
    """Surviving primitives replay bit-identically (token equality)."""
    tok_before = replay_tokens(before)
    tok_after = replay_tokens(after)
    removed_eids = {e.eid for e in removed}
    assert set(tok_after) == set(tok_before) - removed_eids
    for eid, tok in tok_after.items():
        assert tok == tok_before[eid], f"event {eid} diverged"


def assert_work_conserved(before: OpTrace, after: OpTrace, removed=()):
    """Per-kind work accounting: nothing appears, nothing vanishes."""
    got = work_counts(after)
    for e in removed:
        k = e.kind
        got[k] = got.get(k, 0) + event_work(e)
    assert {k: v for k, v in got.items() if v} == \
        {k: v for k, v in work_counts(before).items() if v}


class TestEachPassAlone:
    @pytest.mark.parametrize("recording", RECORDINGS)
    @pytest.mark.parametrize("make_pass", [
        RotationDedupPass, FoldTwistPass, FuseElementwisePass,
        MergeLaunchesPass, PoolReorderPass,
    ])
    def test_pass_contract(self, recording, make_pass, request):
        trace = request.getfixturevalue(recording)
        out, stats = make_pass().run(trace)
        validate_trace(out)
        assert_replay_parity(trace, out, stats.removed)
        assert_work_conserved(trace, out, stats.removed)

    @pytest.mark.parametrize("recording", RECORDINGS)
    def test_deps_still_reference_producers(self, recording, request):
        trace = request.getfixturevalue(recording)
        out, _ = optimize_trace(trace)
        defined = set()
        for e in out.events:
            for d in e.deps:
                assert d in defined, f"event {e.eid} reads undefined {d}"
            defined.add(e.eid)
            defined.update(c.eid for c in e.fused)


class TestComposedPipeline:
    @pytest.mark.parametrize("recording", RECORDINGS)
    def test_replay_parity_after_full_pipeline(self, recording, request):
        trace = request.getfixturevalue(recording)
        out, report = optimize_trace(trace)
        removed = [e for st in report.passes for e in st.removed]
        validate_trace(out)
        assert_replay_parity(trace, out, removed)
        assert_work_conserved(trace, out, removed)

    @pytest.mark.parametrize("recording", RECORDINGS)
    def test_expansion_restores_primitive_granularity(self, recording,
                                                      request):
        trace = request.getfixturevalue(recording)
        out, report = optimize_trace(trace)
        expanded = out.expanded()
        assert not any(e.fused for e in expanded.events)
        removed = [e for st in report.passes for e in st.removed]
        assert len(expanded.events) == \
            len(primitive_events(trace)) - len(removed)
        assert_replay_parity(trace, expanded, removed)

    def test_bootstrap_pipeline_reduces_events(self, boot_trace):
        out, report = optimize_trace(boot_trace)
        assert len(out.events) < len(boot_trace.events)
        by_name = {s.name: s for s in report.passes}
        assert by_name["fold-twists"].fused_groups > 0
        assert by_name["fuse-elementwise"].fused_groups > 0

    def test_verifier_rejects_forged_event(self, hmult_trace):
        class Forge(FuseElementwisePass):
            name = "forge"

            def run(self, trace):
                out, stats = super().run(trace)
                import dataclasses
                events = list(out.events)
                for i, e in enumerate(events):
                    if e.kind == "modadd":
                        events[i] = dataclasses.replace(
                            e, shape={**e.shape,
                                      "rows": e.shape["rows"] + 1}
                        )
                        break
                return OpTrace(label=out.label, n=out.n,
                               params=out.params,
                               events=tuple(events)), stats

        with pytest.raises(OptimizationError):
            PassPipeline([Forge()]).run(hmult_trace)


class TestRotationDedup:
    def _dup_trace(self):
        events = (
            TraceEvent(0, "ntt", "op", "op", 3, {"rows": 2}, ()),
            TraceEvent(1, "automorphism", "op", "op", 3,
                       {"primes": 3, "polys": 2}, (0,), args=(1,)),
            TraceEvent(2, "automorphism", "op", "op", 3,
                       {"primes": 3, "polys": 2}, (0,), args=(1,)),
            TraceEvent(3, "modadd", "op", "op", 3, {"rows": 2}, (1,)),
            TraceEvent(4, "modadd", "op", "op", 3, {"rows": 2}, (2,)),
            # Same step from a *different* source: not a duplicate.
            TraceEvent(5, "automorphism", "op", "op", 3,
                       {"primes": 3, "polys": 2}, (3,), args=(1,)),
            TraceEvent(6, "modmul", "op", "op", 3, {"rows": 2}, (5,)),
            # Dead rotation: nobody reads it.
            TraceEvent(7, "automorphism", "op", "op", 3,
                       {"primes": 3, "polys": 2}, (0,), args=(2,)),
        )
        return OpTrace(label="dup", n=64, events=events)

    def test_duplicate_and_dead_rotations_removed(self):
        trace = self._dup_trace()
        out, stats = RotationDedupPass().run(trace)
        assert stats.deduped == 1
        assert stats.dead == 1
        kinds = [e.eid for e in out.events if e.kind == "automorphism"]
        assert kinds == [1, 5]

    def test_consumers_remapped_to_survivor(self):
        out, _ = RotationDedupPass().run(self._dup_trace())
        by_eid = {e.eid: e for e in out.events}
        assert by_eid[4].deps == (1,)  # was (2,): the dropped duplicate
        assert by_eid[3].deps == (1,)

    def test_distinct_steps_from_same_source_kept(self, hoisted_trace):
        out, stats = RotationDedupPass().run(hoisted_trace)
        # The hoisted pass already shares one ModUp across steps; its
        # per-step automorphisms are distinct and must all survive.
        assert stats.deduped == 0

    def test_observed_steps_include_recorded_args(self, hoisted_trace):
        assert set(observed_rotation_steps(hoisted_trace)) >= {1, 2, 3}


class TestRotationConsistency:
    """Satellite: declared rotation keys match the recorded run."""

    def test_bootstrap_observed_equals_declared(self):
        params = proxy_params_for(ParameterSets.boot(), 10)
        ctx = CkksContext.create(params, seed=0)
        boot = Bootstrapper(ctx, BootstrapConfig(
            sine_degree=31, fft_factored=True, fuse=3,
        ))
        keys = ctx.keygen(rotations=boot.required_rotations(),
                          conjugation=True)
        vals = np.zeros(ctx.slots)
        vals[:4] = [0.5, -0.25, 0.125, 0.75]
        ct = ctx.encrypt(vals, keys, level=boot.stc_levels)
        with record("boot", params=params, n=params.n) as rec:
            boot.bootstrap(ct, keys)
        observed = boot.assert_rotations_consistent(rec.trace)
        # Exact agreement: every declared key is exercised, so keygen
        # generates nothing the run never uses.
        assert observed == boot.required_rotations()

    def test_undeclared_rotation_rejected(self):
        params = proxy_params_for(ParameterSets.boot(), 10)
        ctx = CkksContext.create(params, seed=0)
        boot = Bootstrapper(ctx, BootstrapConfig(
            sine_degree=31, fft_factored=True, fuse=3,
        ))
        bad = next(s for s in range(1, 1 << 20)
                   if s not in set(boot.required_rotations()))
        trace = OpTrace(label="synth", n=64, events=(
            TraceEvent(0, "automorphism", "op", "op", 3,
                       {"primes": 2, "polys": 2}, (), args=(bad,)),
        ))
        with pytest.raises(AssertionError, match="undeclared"):
            boot.assert_rotations_consistent(trace)


class TestFusionLowering:
    def test_optimized_dag_specs_validate(self, boot_trace):
        out, _ = optimize_trace(boot_trace)
        dag = lower_trace(out, style="pe")
        for nd in dag.nodes:
            nd.spec.validate()

    def test_optimized_dag_launches_fewer_kernels(self, boot_trace):
        out, _ = optimize_trace(boot_trace)
        base = lower_trace(boot_trace, style="pe")
        opt = lower_trace(out, style="pe")
        assert opt.kernel_count < base.kernel_count

    def test_fold_tags_surface_in_specs(self, boot_trace):
        out, _ = optimize_trace(boot_trace)
        dag = lower_trace(out, style="pe")
        tags = [nd.spec.tags for nd in dag.nodes]
        assert any("fold_pre" in t or "fold_post" in t for t in tags)
        assert any("fused" in t for t in tags)

    def test_constituent_eids_exported(self, boot_trace):
        out, _ = optimize_trace(boot_trace)
        dag = lower_trace(out, style="pe")
        covered = set()
        for nd in dag.nodes:
            covered.update(nd.eids)
        for e in out.events:
            assert e.eid in covered
            for c in e.fused:
                assert c.eid in covered

    def test_optimized_not_slower(self, boot_trace):
        out, _ = optimize_trace(boot_trace)
        base_us = lower_trace(boot_trace, style="pe").run().elapsed_us
        opt_us = lower_trace(out, style="pe").run().elapsed_us
        assert opt_us <= base_us + 1e-6


class TestReorder:
    def test_pool_reorder_never_hurts(self, boot_trace):
        before = trace_pool_peak_rows(boot_trace)
        out, stats = PoolReorderPass().run(boot_trace)
        assert trace_pool_peak_rows(out) <= before
        assert stats.notes["pool_peak_rows_after"] <= \
            stats.notes["pool_peak_rows_before"]

    def test_greedy_shrinks_synthetic_peak(self):
        # Three producers feeding one reducer each; recorded order runs
        # all producers first (peak 3 buffers), greedy interleaves.
        ev = []
        for i in range(3):
            ev.append(TraceEvent(2 * i, "ntt", "op", "op", 3,
                                 {"rows": 8}, ()))
        for i in range(3):
            ev.append(TraceEvent(2 * i + 1, "divide", "op", "op", 3,
                                 {"rows": 1, "drop": 1}, (2 * i,)))
        trace = OpTrace(label="synth", n=64, events=tuple(
            sorted(ev, key=lambda e: e.kind != "ntt")
        ))
        out, stats = PoolReorderPass().run(trace)
        assert stats.notes["pool_peak_rows_after"] < \
            stats.notes["pool_peak_rows_before"]

    def test_schedule_search_never_slower_than_recorded(self, boot_trace):
        out, _ = optimize_trace(boot_trace)
        dag = lower_trace(out, style="pe")
        best, scores = schedule_search(dag)
        assert min(scores.values()) <= scores["recorded"] + 1e-6
        assert best.run().elapsed_us == pytest.approx(
            min(scores.values()))

    def test_permute_dag_rejects_illegal_order(self, hmult_trace):
        dag = lower_trace(hmult_trace, style="pe")
        order = list(range(dag.kernel_count))
        dep_node = next(i for i, nd in enumerate(dag.nodes) if nd.deps)
        order[dep_node], order[dag.nodes[dep_node].deps[0]] = \
            order[dag.nodes[dep_node].deps[0]], order[dep_node]
        with pytest.raises(ValueError, match="dependency|permutation"):
            permute_dag(dag, order)


class TestProfileCacheStats:
    """Satellite: run_dag exposes its spec-profile cache counters."""

    def test_counters_follow_convention(self, hmult_trace):
        dag = lower_trace(hmult_trace, style="pe")
        before = profile_cache_stats()
        dag.run()
        after = profile_cache_stats()
        assert set(after) == {"hits", "misses", "runs", "currsize"}
        assert after["runs"] == before["runs"] + 1
        assert after["misses"] > before["misses"]
        assert after["currsize"] > 0

    def test_repeated_specs_hit(self, boot_trace):
        dag = lower_trace(boot_trace, style="pe")
        before = profile_cache_stats()
        dag.run()
        after = profile_cache_stats()
        # Traces repeat shapes heavily: far fewer distinct specs than
        # launches.
        assert after["currsize"] < dag.kernel_count
        assert after["hits"] - before["hits"] == \
            dag.kernel_count - after["currsize"]


class TestTraceKindLint:
    """Satellite: the T-KIND fhelint rule guards the emit vocabulary."""

    def _findings(self, source):
        from repro.analysis.fhelint.registry import Registry
        from repro.analysis.fhelint.tracerules import trace_kind_findings

        mod = Registry().add_module("snippet.py", source)
        return trace_kind_findings(mod, lambda line: "f")

    def test_unknown_kind_flagged(self):
        out = self._findings("emit('nttt', rows=2)\n")
        assert [f.rule for f in out] == ["T-KIND"]

    def test_known_kinds_clean(self):
        src = ("emit('ntt', rows=2)\n"
               "_temit('automorphism', primes=3)\n"
               "rec.emit('fused_elementwise', rows=1)\n")
        assert self._findings(src) == []

    def test_variable_kind_out_of_scope(self):
        assert self._findings("emit(kind, rows=2)\n") == []

    def test_repo_is_clean(self):
        import os

        from repro.analysis.fhelint.runner import run_lint

        root = os.path.join(os.path.dirname(__file__), os.pardir,
                            os.pardir, "src", "repro")
        result = run_lint([root])
        assert [f for f in result.findings
                if f.rule == "T-KIND" and not f.suppressed] == []
