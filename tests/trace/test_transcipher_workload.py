"""The recorded AES transcipher round block (serving's fourth job)."""

import pytest

from repro.trace import lower_trace
from repro.workloads import record_transcipher_block_trace


@pytest.fixture(scope="module")
def trace():
    return record_transcipher_block_trace()


class TestTranscipherTrace:
    def test_records_the_round_structure(self, trace):
        ops = {e.op for e in trace.events}
        assert "hrotate" in ops          # ShiftRows-style masked rotations
        assert "add_plain" in ops        # AddRoundKey
        assert any(e.kind == "inner_product" for e in trace.events)
        assert any(e.kind == "automorphism" for e in trace.events)
        assert len(trace.events) > 50

    def test_cached_per_process(self, trace):
        assert record_transcipher_block_trace() is trace

    def test_lowers_and_prices(self, trace):
        dag = lower_trace(trace, style="pe")
        assert dag.kernel_count >= len(
            [e for e in trace.events if not e.fused]
        ) // 2
        res = dag.run()
        assert res.elapsed_us > 0
