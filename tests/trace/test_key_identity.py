"""Key-material identity on recorded events (ISSUE 8 satellite).

Key-switching stacks are read by ``inner_product`` launches but are not
tracked as read buffers, so two events with identical inputs and shapes
can still compute different results under different keys.  The recorder
tags each event with recorder-scoped key ordinals; replay tokens fold
them in so any future cross-``inner_product`` CSE stays sound.
"""

import numpy as np

from repro.ckks import CkksContext
from repro.ckks.params import ParameterSets
from repro.trace.opt.replay import replay_tokens
from repro.trace.recorder import emit, record


class Buf:
    def __init__(self, n=16):
        self.data = np.zeros((2, n), dtype=np.uint64)


class TestKeyOrdinals:
    def test_default_is_empty(self):
        with record("t") as rec:
            emit("modadd", rows=2)
        assert rec.trace.events[0].key == ()

    def test_same_object_same_ordinal(self):
        ksk = object()
        with record("t") as rec:
            emit("inner_product", rows=2, key_material=(ksk,))
            emit("inner_product", rows=2, key_material=(ksk,))
        e = rec.trace.events
        assert e[0].key == e[1].key == (0,)

    def test_distinct_objects_distinct_ordinals(self):
        k1, k2 = object(), object()
        with record("t") as rec:
            emit("inner_product", rows=2, key_material=(k1,))
            emit("inner_product", rows=2, key_material=(k2,))
            emit("inner_product", rows=2, key_material=(k1, k2))
        e = rec.trace.events
        assert e[0].key == (0,)
        assert e[1].key == (1,)
        assert e[2].key == (0, 1)

    def test_ordinals_are_recorder_scoped(self):
        k1, k2 = object(), object()
        with record("a") as rec_a:
            emit("inner_product", rows=2, key_material=(k1,))
        with record("b") as rec_b:
            emit("inner_product", rows=2, key_material=(k2,))
        assert rec_a.trace.events[0].key == (0,)
        assert rec_b.trace.events[0].key == (0,)


class TestReplayTokens:
    def test_key_material_distinguishes_tokens(self):
        k1, k2 = object(), object()
        a, b, c = Buf(), Buf(), Buf()
        with record("t") as rec:
            emit("inner_product", rows=2, writes=(a,), key_material=(k1,))
            emit("inner_product", rows=2, writes=(b,), key_material=(k2,))
            emit("inner_product", rows=2, writes=(c,), key_material=(k1,))
        tokens = replay_tokens(rec.trace)
        assert tokens[0] != tokens[1]  # different key stack, no CSE
        assert tokens[0] == tokens[2]  # same key stack, same value


class TestRecordedKeyswitch:
    def test_relin_and_rotation_keys_get_distinct_ordinals(self):
        params = ParameterSets.small()
        ctx = CkksContext.create(params, seed=7)
        keys = ctx.keygen(rotations=[1])
        vals = np.zeros(ctx.slots)
        vals[:2] = [0.5, -0.25]
        ct = ctx.encrypt(vals, keys)
        ev = ctx.evaluator
        with record("ks", params=params) as rec:
            ev.hmult(ct, ct, keys)      # key-switch under relin key
            ev.hrotate(ct, 1, keys)     # ... under the rotation key
        inner = [e for e in rec.trace.events
                 if e.kind == "inner_product"]
        assert len(inner) >= 2, "expected two recorded inner_products"
        assert all(e.key != () for e in inner)
        assert inner[0].key != inner[1].key
