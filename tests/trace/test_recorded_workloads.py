"""Recorded workload pricing and the trace-derived hoisting factor."""

import pytest

from repro.ckks.params import ParameterSets
from repro.core import OperationScheduler
from repro.workloads import (
    HOISTED_ROTATION_FACTOR,
    WorkloadSchedule,
    WorkloadTiming,
    derived_hoisted_rotation_factor,
    hoisted_rotation_factor,
    record_bootstrap_trace,
    recorded_workload_timing,
    simulate_recorded_bootstrap,
)


@pytest.fixture(scope="module")
def set_c_scheduler():
    return OperationScheduler(ParameterSets.set_c())


class TestDerivedFactor:
    def test_set_c_factor_matches_hand_tuned_constant(self, set_c_scheduler):
        # The hand-tuned constant was eyeballed for SET-C; the
        # trace-derived value must land within +-20% of it.
        factor = derived_hoisted_rotation_factor(set_c_scheduler)
        assert factor == pytest.approx(HOISTED_ROTATION_FACTOR, rel=0.20)

    def test_factor_cached(self, set_c_scheduler):
        a = derived_hoisted_rotation_factor(set_c_scheduler)
        b = derived_hoisted_rotation_factor(set_c_scheduler)
        assert a == b

    def test_fallback_without_scheduler(self):
        assert hoisted_rotation_factor(None) == HOISTED_ROTATION_FACTOR

    def test_pricing_uses_derived_factor(self, set_c_scheduler):
        assert hoisted_rotation_factor(set_c_scheduler) == \
            derived_hoisted_rotation_factor(set_c_scheduler)

    def test_static_and_derived_pricings_differ(self, set_c_scheduler):
        sched = WorkloadSchedule("rot")
        sched.add("hrotate", 10, 1)
        sched.add("hrotate", 10, 7, hoisted=True)
        static = sched.price(set_c_scheduler, hoisting="static").total_us
        derived = sched.price(set_c_scheduler, hoisting="derived").total_us
        assert static != derived

    def test_unknown_hoisting_mode_rejected(self, set_c_scheduler):
        sched = WorkloadSchedule("rot")
        sched.add("hrotate", 10, 1)
        with pytest.raises(ValueError):
            sched.price(set_c_scheduler, hoisting="maybe")


class TestRecordedBootstrap:
    def test_set_c_bootstrap_records_and_prices(self, set_c_scheduler):
        # The acceptance path: functional SET-C bootstrap recorded at
        # proxy ring scale, lowered to a PE kernel DAG at N=2^14,
        # priced end-to-end on the DAG scheduler.
        timing = simulate_recorded_bootstrap(
            ParameterSets.set_c(), scheduler=set_c_scheduler,
            proxy_log2n=9,
        )
        assert timing.total_us > 0
        for phase in ("StC", "ModRaise", "CtS", "EvalMod"):
            assert timing.breakdown[phase] > 0

    def test_trace_cached_per_chain_and_knobs(self):
        a = record_bootstrap_trace(ParameterSets.set_c(), proxy_log2n=9)
        b = record_bootstrap_trace(ParameterSets.set_c(), proxy_log2n=9)
        assert a is b

    def test_trace_has_all_bootstrap_phases(self):
        trace = record_bootstrap_trace(ParameterSets.set_c(), proxy_log2n=9)
        assert trace.ops() == ["StC", "ModRaise", "CtS", "EvalMod"]
        counts = trace.kind_counts()
        for kind in ("ntt", "intt", "modup", "moddown", "inner_product",
                     "tensor_product", "divide", "modadd"):
            assert counts.get(kind, 0) > 0, kind


class TestRecordedWorkloadTiming:
    def test_embedded_bootstraps_replaced(self, set_c_scheduler):
        sched = WorkloadSchedule("w")
        sched.add("hadd", 10, 3, note="core.add")
        sched.add("hadd", 14, 0.5, note="boot.ModRaise")
        sched.add("hmult", 11, 4, note="boot.EvalMod.baby")
        recorded_boot = WorkloadTiming(name="b", total_us=1000.0, batch=1)
        core_only = WorkloadSchedule("w")
        core_only.add("hadd", 10, 3, note="core.add")
        expected_core = core_only.price(set_c_scheduler).total_us

        timing = recorded_workload_timing(
            sched, set_c_scheduler, recorded_boot=recorded_boot)
        assert timing.breakdown["boot(recorded)"] == pytest.approx(500.0)
        assert timing.total_us == pytest.approx(expected_core + 500.0)

    def test_multiple_bootstraps_counted(self, set_c_scheduler):
        sched = WorkloadSchedule("w")
        sched.add("hadd", 14, 2, note="boot0.ModRaise")
        sched.add("hadd", 14, 2, note="boot1.ModRaise")
        recorded_boot = WorkloadTiming(name="b", total_us=10.0, batch=1)
        timing = recorded_workload_timing(
            sched, set_c_scheduler, recorded_boot=recorded_boot)
        assert timing.total_us == pytest.approx(40.0)
