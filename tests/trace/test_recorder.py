"""Recorder semantics: hooks, spans, identity-based dependencies."""

import numpy as np
import pytest

from repro.trace.ir import OpTrace, TraceEvent
from repro.trace.recorder import active, emit, record, span


class Buf:
    """Minimal RnsPoly-like carrier for dependency tracking."""

    def __init__(self, n=16):
        self.data = np.zeros((2, n), dtype=np.uint64)
        self.n = n


class TestHooks:
    def test_emit_is_noop_when_inactive(self):
        assert active() is None
        assert emit("modadd", rows=4) is None

    def test_span_is_noop_when_inactive(self):
        with span("anything"):
            assert active() is None

    def test_emit_collects_when_active(self):
        with record("t") as rec:
            eid = emit("modadd", rows=4, level=2)
        assert eid == 0
        tr = rec.trace
        assert len(tr) == 1
        assert tr.events[0].kind == "modadd"
        assert tr.events[0].shape == {"rows": 4}
        assert tr.events[0].level == 2

    def test_recordings_do_not_nest(self):
        with record("outer"):
            with pytest.raises(RuntimeError, match="do not nest"):
                with record("inner"):
                    pass
        assert active() is None

    def test_recorder_cleared_on_exception(self):
        with pytest.raises(ValueError):
            with record("t"):
                raise ValueError("boom")
        assert active() is None


class TestDependencies:
    def test_reads_resolve_to_last_writer(self):
        a, b, c = Buf(), Buf(), Buf()
        with record("t") as rec:
            emit("ntt", rows=2, writes=(a,))
            emit("modmul", rows=2, reads=(a,), writes=(b,))
            emit("intt", rows=2, reads=(b,), writes=(c,))
        e = rec.trace.events
        assert e[0].deps == ()
        assert e[1].deps == (0,)
        assert e[2].deps == (1,)

    def test_rewrite_shadows_earlier_writer(self):
        a = Buf()
        with record("t") as rec:
            emit("ntt", rows=2, writes=(a,))
            emit("intt", rows=2, writes=(a,))
            emit("modadd", rows=2, reads=(a,))
        assert rec.trace.events[2].deps == (1,)

    def test_unwritten_reads_are_external_inputs(self):
        a = Buf()
        with record("t") as rec:
            emit("modadd", rows=2, reads=(a,))
        assert rec.trace.events[0].deps == ()

    def test_raw_arrays_and_wrappers_share_identity(self):
        a = Buf()
        with record("t") as rec:
            emit("ntt", rows=2, writes=(a.data,))
            emit("modadd", rows=2, reads=(a.data,))
        assert rec.trace.events[1].deps == (0,)


class TestSpans:
    def test_span_path_and_instances(self):
        with record("t") as rec:
            with span("StC"):
                with span("hrotate"):
                    emit("automorphism", primes=3, polys=2)
                with span("hrotate"):
                    emit("automorphism", primes=3, polys=2)
        e = rec.trace.events
        assert e[0].op == "StC/hrotate" == e[1].op
        # Per-instance span keys keep separate invocations apart.
        assert e[0].span != e[1].span
        assert e[0].group == "StC"
        assert e[0].leaf == "hrotate"

    def test_level_defaults_to_innermost_span(self):
        with record("t") as rec:
            with span("outer", level=7):
                emit("modadd", rows=1)
                with span("inner", level=3):
                    emit("modadd", rows=1)
                emit("modadd", rows=1, level=5)
        levels = [e.level for e in rec.trace.events]
        assert levels == [7, 3, 5]

    def test_n_inferred_from_buffers(self):
        with record("t") as rec:
            emit("ntt", rows=2, writes=(Buf(n=64),))
        assert rec.trace.n == 64


class TestOpTrace:
    def _trace(self):
        events = (
            TraceEvent(0, "ntt", "StC/hrotate", "StC#0/hrotate#0", 3,
                       {"rows": 4}),
            TraceEvent(1, "modadd", "StC", "StC#0", 3, {"rows": 2},
                       deps=(0,)),
            TraceEvent(2, "ntt", "CtS/hrotate", "CtS#0/hrotate#0", 9,
                       {"rows": 4}),
        )
        return OpTrace(label="boot", n=32, events=events)

    def test_kind_counts(self):
        assert self._trace().kind_counts() == {"ntt": 2, "modadd": 1}

    def test_ops_in_first_seen_order(self):
        assert self._trace().ops() == ["StC", "CtS"]

    def test_events_for_prefix(self):
        tr = self._trace()
        assert [e.eid for e in tr.events_for("StC")] == [0, 1]
        assert [e.eid for e in tr.events_for("StC/hrotate")] == [0]

    def test_summary_mentions_label_and_counts(self):
        s = self._trace().summary()
        assert "boot" in s and "ntt: 2" in s
