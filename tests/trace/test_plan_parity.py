"""Traced functional ops lower to the static plans' kernel grids.

The property the trace layer rests on: for every op in
``HOMOMORPHIC_OPS``, recording the *functional* implementation and
lowering it PE-style yields the same kernel count and the same
``(blocks, warps_per_block)`` grids as the hand-authored
``OperationScheduler.plan`` at the same level.

Documented divergences (asserted explicitly below):

* ``keyswitch`` — the bare functional primitive returns the switched
  pair without folding it into a ciphertext, so the plan's trailing
  ``ks.combine`` kernel has no traced counterpart: the trace matches
  ``plan[:-1]``.
* ``hrotate`` — the functional tail adds ``rot0 + ks0`` (one polynomial;
  ``ks1`` is used as-is), so the final modadd covers half the plan's
  two-polynomial combine grid.
"""

import numpy as np
import pytest

from repro.ckks import CkksContext
from repro.ckks.keyswitch import keyswitch
from repro.ckks.params import ParameterSets
from repro.core import OperationScheduler
from repro.core.scheduler import HOMOMORPHIC_OPS
from repro.trace import lower_trace
from repro.trace.recorder import record

PARAMS = ParameterSets.small()


@pytest.fixture(scope="module")
def setup():
    scheduler = OperationScheduler(PARAMS)
    ctx = CkksContext.create(PARAMS, seed=7)
    keys = ctx.keygen(rotations=[1])
    vals = np.zeros(ctx.slots)
    vals[:3] = [0.5, -0.25, 0.125]
    ct = ctx.encrypt(vals, keys)
    ct2 = ctx.encrypt(vals, keys)
    pt = ctx.encode(vals, level=ct.level)
    return scheduler, ctx, keys, ct, ct2, pt


def traced_dag(scheduler, run):
    with record("op", params=PARAMS) as rec:
        run()
    return lower_trace(
        rec.trace, params=scheduler.params, style="pe",
        device=scheduler.device, ntt_variant=scheduler.ntt.variant,
        geometry=scheduler.geometry,
    )


def grids(specs):
    return [(s.blocks, s.warps_per_block) for s in specs]


def functional_call(op, ctx, keys, ct, ct2, pt):
    ev = ctx.evaluator
    if op == "hadd":
        return lambda: ev.hadd(ct, ct2)
    if op == "hsub":
        return lambda: ev.hsub(ct, ct2)
    if op == "pmult":
        return lambda: ev.pmult(ct, pt)
    if op == "hmult":
        return lambda: ev.hmult(ct, ct2, keys)
    if op == "hrotate":
        return lambda: ev.hrotate(ct, 1, keys)
    if op == "rescale":
        scaled = ev.pmult(ct, pt)
        return lambda: ev.rescale(scaled)
    if op == "keyswitch":
        return lambda: keyswitch(ct.c1, keys.relin, ev.p_moduli)
    raise AssertionError(f"unhandled op {op!r}")


@pytest.mark.parametrize("op", HOMOMORPHIC_OPS)
def test_traced_op_matches_plan(op, setup):
    scheduler, ctx, keys, ct, ct2, pt = setup
    dag = traced_dag(scheduler, functional_call(op, ctx, keys, ct, ct2, pt))
    plan = scheduler.plan(op, level=ct.level)
    traced = grids(dag.specs)
    planned = grids(plan)

    if op == "keyswitch":
        # Divergence: no ciphertext to combine into (see module docstring).
        assert plan[-1].name == "ks.combine"
        assert traced == planned[:-1]
    elif op == "hrotate":
        # Divergence: the traced combine covers one polynomial, not two.
        assert len(traced) == len(planned)
        assert traced[:-1] == planned[:-1]
        assert traced[-1][0] * 2 == planned[-1][0]
        assert traced[-1][1] == planned[-1][1]
    else:
        assert traced == planned


def test_hmult_contains_full_keyswitch_and_rescale(setup):
    scheduler, ctx, keys, ct, ct2, pt = setup
    dag = traced_dag(scheduler, functional_call(
        "hmult", ctx, keys, ct, ct2, pt))
    names = [nd.spec.name for nd in dag.nodes]
    assert names[0] == "hmult.tensor_product"
    assert "keyswitch.inner_product" in names
    assert names[-1] == "rescale.ntt"
