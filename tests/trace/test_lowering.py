"""Lowering recorded traces to kernel DAGs: styles, retargeting, runs."""

import dataclasses

import numpy as np
import pytest

from repro.ckks import CkksContext
from repro.ckks.params import ParameterSets
from repro.trace import KernelDag, lower_trace
from repro.trace.recorder import record
from repro.workloads import proxy_params_for

PARAMS = ParameterSets.small()


@pytest.fixture(scope="module")
def setup():
    ctx = CkksContext.create(PARAMS, seed=3)
    keys = ctx.keygen(rotations=[1])
    vals = np.zeros(ctx.slots)
    vals[:2] = [0.5, -0.25]
    ct = ctx.encrypt(vals, keys)
    ct2 = ctx.encrypt(vals, keys)
    return ctx, keys, ct, ct2


def record_hmult(setup):
    ctx, keys, ct, ct2 = setup
    with record("hmult", params=PARAMS) as rec:
        ctx.evaluator.hmult(ct, ct2, keys)
    return rec.trace


class TestStyles:
    def test_pe_merges_kf_and_tensorfhe_split(self, setup):
        trace = record_hmult(setup)
        counts = {
            style: lower_trace(trace, style=style).kernel_count
            for style in ("pe", "kf", "tensorfhe")
        }
        # PE merges polynomial-level stages into ciphertext-level
        # launches; kf splits per pane/poly; tensorfhe additionally
        # expands every NTT pane to the five-stage plan.
        assert counts["pe"] < counts["kf"] < counts["tensorfhe"]

    def test_pe_honors_split_hints(self, setup):
        trace = record_hmult(setup)
        dag = lower_trace(trace, style="pe")
        names = [nd.spec.name for nd in dag.nodes]
        # The keyswitch tail keeps its per-accumulator launches.
        assert "keyswitch.intt[0]" in names
        assert "keyswitch.intt[1]" in names

    def test_unknown_style_rejected(self, setup):
        trace = record_hmult(setup)
        with pytest.raises(ValueError, match="unknown lowering style"):
            lower_trace(trace, style="fused")

    def test_nodes_topologically_ordered(self, setup):
        dag = lower_trace(record_hmult(setup), style="pe")
        for i, nd in enumerate(dag.nodes):
            assert all(0 <= d < i for d in nd.deps)

    def test_groups_and_ops_labelled(self, setup):
        dag = lower_trace(record_hmult(setup), style="pe")
        assert dag.groups() == ["hmult"]
        assert any(nd.op.endswith("keyswitch") for nd in dag.nodes)


class TestRetarget:
    def test_proxy_recording_lowers_to_target_ring(self, setup):
        proxy = proxy_params_for(PARAMS, 9)
        assert proxy.n == 512
        ctx = CkksContext.create(proxy, seed=3)
        keys = ctx.keygen()
        ct = ctx.encrypt([0.5], keys)
        with record("hmult", params=proxy) as rec:
            ctx.evaluator.hmult(ct, ct, keys)
        small = lower_trace(rec.trace, style="pe")
        full = lower_trace(rec.trace, params=PARAMS, style="pe")
        # Same launch DAG — only the per-kernel geometry grows.
        assert small.kernel_count == full.kernel_count
        assert [nd.spec.name for nd in small.nodes] == \
               [nd.spec.name for nd in full.nodes]
        assert [nd.deps for nd in small.nodes] == \
               [nd.deps for nd in full.nodes]
        assert full.n == PARAMS.n
        assert sum(nd.spec.blocks for nd in full.nodes) > \
               sum(nd.spec.blocks for nd in small.nodes)

    def test_chain_mismatch_rejected(self, setup):
        trace = record_hmult(setup)
        other = ParameterSets.set_c()  # different chain structure
        with pytest.raises(ValueError, match="chain structure"):
            lower_trace(trace, params=other, style="pe")

    def test_proxy_params_preserve_chain(self):
        boot = ParameterSets.boot()
        proxy = proxy_params_for(boot, 10)
        assert proxy.n == 1024
        for field_name in ("max_level", "num_special", "dnum",
                           "rescale_primes", "scale_bits"):
            assert getattr(proxy, field_name) == getattr(boot, field_name)

    def test_proxy_params_noop_when_already_small(self):
        toy = ParameterSets.toy()
        assert proxy_params_for(toy, 10) is toy


class TestRun:
    def test_priced_end_to_end(self, setup):
        dag = lower_trace(record_hmult(setup), style="pe")
        result = dag.run()
        assert result.kernel_count == dag.kernel_count
        assert result.elapsed_us > 0
        # Every timeline entry waits for its recorded dependencies.
        by_index = {e.index: e for e in result.entries}
        for e in result.entries:
            for d in e.deps:
                assert e.start_us >= by_index[d].end_us - 1e-9

    def test_batch_scales_work(self, setup):
        trace = record_hmult(setup)
        one = lower_trace(trace, style="pe", batch=1)
        many = lower_trace(trace, style="pe", batch=16)
        assert many.kernel_count == one.kernel_count
        assert many.run().elapsed_us > one.run().elapsed_us
