"""Tests for the BGV scheme (§VI-B generality: exact arithmetic mod t)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgv import BgvContext, BgvParams
from repro.numtheory.rns import RNSBasis, mod_down_exact_t


@pytest.fixture(scope="module")
def ctx():
    return BgvContext(BgvParams.toy(), seed=3)


@pytest.fixture(scope="module")
def keys(ctx):
    return ctx.keygen()


def centered(values, t):
    out = [v % t for v in values]
    return [v - t if v > t // 2 else v for v in out]


class TestParams:
    def test_plain_modulus_is_ntt_friendly(self):
        p = BgvParams.toy()
        t = p.plain_modulus
        assert t % (2 * p.n) == 1
        assert t.bit_length() == p.plain_bits

    def test_validation(self):
        with pytest.raises(ValueError):
            BgvParams(n=48, max_level=2)
        with pytest.raises(ValueError):
            BgvParams(n=64, max_level=0)
        with pytest.raises(ValueError):
            BgvParams(n=64, max_level=2, plain_bits=40)


class TestEncoding:
    def test_roundtrip(self, ctx):
        vals = [0, 1, -1, 5000, -12345]
        coeffs = ctx.encode(vals)
        decoded = ctx.decode(coeffs)
        assert centered(decoded[:5].tolist(), ctx.t) == centered(
            vals, ctx.t
        )

    def test_slot_count_limit(self, ctx):
        with pytest.raises(ValueError):
            ctx.encode(list(range(ctx.params.n + 1)))

    def test_encoding_is_ring_iso(self, ctx):
        """Slot-wise product == polynomial product mod (X^N+1, t)."""
        from repro.ntt import negacyclic_convolution

        a = np.arange(1, 9)
        b = np.arange(2, 10)
        ca = ctx.encode(a)
        cb = ctx.encode(b)
        prod = negacyclic_convolution(ca, cb, ctx.t)
        slots = ctx.decode(prod)
        assert slots[:8].tolist() == (a * b).tolist()


class TestEncryptDecrypt:
    def test_roundtrip(self, ctx, keys):
        vals = [5, -7, 100, 0, 1234]
        ct = ctx.encrypt(vals, keys)
        assert ctx.decrypt(ct, keys)[:5].tolist() == vals

    def test_randomized(self, ctx, keys):
        a = ctx.encrypt([1], keys)
        b = ctx.encrypt([1], keys)
        assert not np.array_equal(a.c0.data, b.c0.data)

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(min_value=-30000, max_value=30000),
                    min_size=1, max_size=16))
    def test_roundtrip_property(self, vals):
        ctx = BgvContext(BgvParams.toy(), seed=9)
        keys = ctx.keygen()
        ct = ctx.encrypt(vals, keys)
        assert ctx.decrypt(ct, keys)[: len(vals)].tolist() == vals


class TestHomomorphicOps:
    A = [5, -7, 100, 0, 1234]
    B = [3, 2, -50, 9, 2]

    def test_hadd_exact(self, ctx, keys):
        ct = ctx.hadd(ctx.encrypt(self.A, keys), ctx.encrypt(self.B, keys))
        assert ctx.decrypt(ct, keys)[:5].tolist() == [
            x + y for x, y in zip(self.A, self.B)
        ]

    def test_hsub_exact(self, ctx, keys):
        ct = ctx.hsub(ctx.encrypt(self.A, keys), ctx.encrypt(self.B, keys))
        assert ctx.decrypt(ct, keys)[:5].tolist() == [
            x - y for x, y in zip(self.A, self.B)
        ]

    def test_negate(self, ctx, keys):
        ct = ctx.negate(ctx.encrypt(self.A, keys))
        assert ctx.decrypt(ct, keys)[:5].tolist() == [-x for x in self.A]

    def test_hmult_exact(self, ctx, keys):
        ct = ctx.hmult(ctx.encrypt(self.A, keys),
                       ctx.encrypt(self.B, keys), keys)
        expected = centered([x * y for x, y in zip(self.A, self.B)], ctx.t)
        assert ctx.decrypt(ct, keys)[:5].tolist() == expected
        assert ct.level == ctx.params.max_level - 1  # mod-switched

    def test_hmult_depth_two_mod_t(self, ctx, keys):
        """Depth-2 products are exact in Z_t (values wrap mod t)."""
        ct_a = ctx.encrypt(self.A, keys)
        ct_b = ctx.encrypt(self.B, keys)
        ct = ctx.hmult(ctx.hmult(ct_a, ct_b, keys), ct_a, keys)
        expected = centered(
            [x * y * x for x, y in zip(self.A, self.B)], ctx.t
        )
        assert ctx.decrypt(ct, keys)[:5].tolist() == expected

    def test_pmult(self, ctx, keys):
        ct = ctx.pmult(ctx.encrypt(self.A, keys), [2, 3, 4, 5, 6])
        assert ctx.decrypt(ct, keys)[:5].tolist() == [
            x * c for x, c in zip(self.A, [2, 3, 4, 5, 6])
        ]

    def test_add_plain(self, ctx, keys):
        ct = ctx.add_plain(ctx.encrypt(self.A, keys), [10, 10, 10, 10, 10])
        assert ctx.decrypt(ct, keys)[:5].tolist() == [
            x + 10 for x in self.A
        ]

    def test_mixed_levels_align(self, ctx, keys):
        hi = ctx.encrypt(self.A, keys)
        lo = ctx.hmult(ctx.encrypt(self.B, keys),
                       ctx.encrypt([1, 1, 1, 1, 1], keys), keys)
        ct = ctx.hadd(hi, lo)
        assert ctx.decrypt(ct, keys)[:5].tolist() == [
            x + y for x, y in zip(self.A, self.B)
        ]


class TestModSwitch:
    def test_preserves_message(self, ctx, keys):
        ct = ctx.encrypt([42, -17], keys)
        switched = ctx.mod_switch(ct)
        assert switched.level == ct.level - 1
        assert ctx.decrypt(switched, keys)[:2].tolist() == [42, -17]

    def test_floor_at_level_zero(self, ctx, keys):
        ct = ctx.encrypt([1], keys)
        while ct.level > 0:
            ct = ctx.mod_switch(ct)
        with pytest.raises(ValueError):
            ctx.mod_switch(ct)
        assert ctx.decrypt(ct, keys)[0] == 1


class TestModDownExactT:
    """The GHS rounding primitive behind BGV key-switching."""

    def test_preserves_residue_mod_t(self):
        from repro.numtheory import find_ntt_primes
        import random

        primes = find_ntt_primes(5, 28, 256)
        main = RNSBasis(primes[:3])
        special = RNSBasis(primes[3:5])
        t = 257
        rnd = random.Random(0)
        xs = [rnd.randrange(main.product) * 1 for _ in range(32)]
        stacked = np.stack([
            np.array([x % q for x in xs], dtype=np.uint64)
            for q in main.moduli + special.moduli
        ])
        out = mod_down_exact_t(stacked, main, special, t)
        p = special.product
        p_inv_t = pow(p, -1, t)
        crt = __import__(
            "repro.numtheory", fromlist=["CRTReconstructor"]
        ).CRTReconstructor(main.moduli)
        ys = crt.reconstruct_array(out)
        for x, y in zip(xs, ys):
            # Residue: y ≡ x * P^{-1} (mod t).
            assert y % t == (x * p_inv_t) % t
            # Accuracy: |y - x/P| <= t.
            assert abs(y - round(x / p)) <= t

    def test_rejects_t_dividing_chain(self):
        from repro.numtheory import find_ntt_primes

        primes = find_ntt_primes(3, 28, 256)
        main = RNSBasis(primes[:2])
        special = RNSBasis(primes[2:3])
        with pytest.raises(ValueError):
            mod_down_exact_t(
                np.zeros((3, 4), dtype=np.uint64), main, special,
                primes[0],
            )


class TestBgvGalois:
    def test_slot_permutation_applied(self, ctx, keys):
        e = 5
        ctx.generate_galois_key(keys, e)
        vals = list(range(1, ctx.params.n + 1))
        ct = ctx.encrypt(vals, keys)
        rot = ctx.apply_galois(ct, e, keys)
        got = ctx.decrypt(rot, keys)
        perm = ctx.slot_permutation(e)
        assert got.tolist() == np.array(vals)[perm].tolist()

    def test_permutation_is_bijection(self, ctx):
        perm = ctx.slot_permutation(5)
        assert sorted(perm.tolist()) == list(range(ctx.params.n))

    def test_composition(self, ctx, keys):
        """Applying e twice equals applying e^2 mod 2N."""
        e = 5
        two_n = 2 * ctx.params.n
        ctx.generate_galois_key(keys, e)
        e2 = (e * e) % two_n
        ctx.generate_galois_key(keys, e2)
        vals = list(range(1, ctx.params.n + 1))
        ct = ctx.encrypt(vals, keys)
        twice = ctx.apply_galois(ctx.apply_galois(ct, e, keys), e, keys)
        direct = ctx.apply_galois(ct, e2, keys)
        assert ctx.decrypt(twice, keys).tolist() == \
            ctx.decrypt(direct, keys).tolist()

    def test_missing_key(self, ctx, keys):
        ct = ctx.encrypt([1], keys)
        with pytest.raises(KeyError):
            ctx.apply_galois(ct, 9, keys)  # never generated in this run

    def test_even_exponent_rejected(self, ctx):
        with pytest.raises(ValueError):
            ctx.slot_permutation(4)
