"""Tests for TensorFHE, 100x and CPU baseline models."""

import pytest

from repro.baselines import (
    HundredXOps,
    TensorFheNtt,
    TensorFheOps,
    cpu_hmult_throughput_kops,
    cpu_ntt_throughput_kops,
)
from repro.ckks import ParameterSets
from repro.core import OperationScheduler, WarpDriveNtt
from repro.gpusim import StallReason


class TestTensorFheNtt:
    def test_35_kernel_launches(self):
        """Algorithm 1: 1 + 16 + 1 + 16 + 1 launches."""
        assert len(TensorFheNtt(2**16).kernel_plan()) == 35

    def test_rejects_tiny_sizes(self):
        with pytest.raises(ValueError):
            TensorFheNtt(128)

    def test_stage_grouping(self):
        profiles = TensorFheNtt(2**14).stage_profiles(batch=64)
        assert set(profiles) == {
            "Stage 1", "Stage 2", "Stage 3", "Stage 4", "Stage 5"
        }
        assert len(profiles["Stage 2"]) == 16

    def test_stage1_is_lg_throttle_heavy(self):
        """Table II: the bit-split stage stalls mainly on LG Throttle."""
        profiles = TensorFheNtt(2**16).stage_profiles(batch=1024)
        stage1 = profiles["Stage 1"][0]
        assert stage1.stalls.fraction(StallReason.LG_THROTTLE) > 0.3
        assert stage1.stalls.memory_related_fraction > 0.8

    def test_gemm_stages_long_scoreboard(self):
        profiles = TensorFheNtt(2**16).stage_profiles(batch=1024)
        gemm = profiles["Stage 2"][0]
        assert (
            gemm.stalls.fraction(StallReason.LONG_SCOREBOARD)
            > gemm.stalls.fraction(StallReason.LG_THROTTLE)
        )

    def test_warpdrive_dominates(self):
        """Table VII: roughly an order of magnitude at every set."""
        for n in (2**12, 2**14, 2**16):
            tf = TensorFheNtt(n).throughput_kops(1024)
            wd = WarpDriveNtt(n).throughput_kops(1024)
            assert wd / tf > 5

    def test_multi_stream_serializes_on_full_grids(self):
        """§III-A: streams do not help when grids span the device."""
        ntt = TensorFheNtt(2**16)
        serial = ntt.simulate(1024, streams=1).elapsed_us
        streamed = ntt.simulate(1024, streams=4).elapsed_us
        assert streamed == pytest.approx(serial, rel=0.05)


class TestTensorFheOps:
    def test_hmult_slower_than_warpdrive(self):
        p = ParameterSets.set_a()
        tf = TensorFheOps(p).hmult_throughput_kops(batch=128)
        wd = OperationScheduler(p).throughput_kops("hmult", batch=32)
        assert wd > tf

    def test_batching_helps(self):
        p = ParameterSets.set_a()
        ops = TensorFheOps(p)
        assert (
            ops.hmult_latency_us(batch=128) < ops.hmult_latency_us(batch=4)
        )


class TestHundredX:
    @pytest.fixture(scope="class")
    def hx(self):
        return HundredXOps(ParameterSets.set_c(), optimized=True)

    def test_many_more_kernels_than_pe(self, hx):
        """Table IX: polynomial-level KeySwitch needs 5-10x the launches."""
        wd = OperationScheduler(ParameterSets.set_c())
        assert hx.kernel_count("keyswitch") > 4 * wd.kernel_count("keyswitch")

    def test_kernel_count_grows_with_set(self):
        counts = [
            HundredXOps(ParameterSets.by_name(s), optimized=True)
            .kernel_count("keyswitch")
            for s in ("SET-C", "SET-D", "SET-E")
        ]
        assert counts[0] < counts[1] < counts[2]

    def test_warpdrive_beats_100x_opt_on_hmult(self):
        """Table VIII: >=30% HMULT advantage at every set."""
        for name in ("SET-C", "SET-D", "SET-E"):
            p = ParameterSets.by_name(name)
            opt = HundredXOps(p, optimized=True).latency_us("hmult")
            wd = OperationScheduler(p).latency_us("hmult")
            assert opt / wd > 1.3

    def test_opt_beats_original(self):
        """100x_opt (32-bit + WarpDrive NTT) beats 64-bit 100x."""
        p = ParameterSets.set_c()
        original = HundredXOps(p, optimized=False).latency_us("hmult")
        opt = HundredXOps(p, optimized=True).latency_us("hmult")
        assert opt < original

    def test_original_runs_on_v100(self):
        hx = HundredXOps(ParameterSets.set_c(), optimized=False)
        assert hx.device.name == "NVIDIA V100"
        assert hx.latency_us("hadd") > 0

    def test_all_ops_supported(self, hx):
        for op in ("hadd", "hsub", "pmult", "hmult", "hrotate", "rescale",
                   "keyswitch"):
            assert hx.latency_us(op) > 0

    def test_unknown_op(self, hx):
        with pytest.raises(ValueError):
            hx.plan("bootstrap")

    def test_keyswitch_profile_fields(self, hx):
        prof = hx.keyswitch_profile()
        assert prof["kernels"] > 11
        assert prof["latency_us"] > 0

    def test_utilization_improvement_of_pe_kernels(self):
        """Table IX: WarpDrive's compute utilization beats 100x_opt."""
        for name in ("SET-C", "SET-D"):
            p = ParameterSets.by_name(name)
            hx = HundredXOps(p, optimized=True).keyswitch_profile()
            wd = OperationScheduler(p).profile("keyswitch")
            assert wd["compute_util"] > hx["compute_util"]


class TestCpuBaseline:
    def test_ntt_matches_paper_calibration(self):
        """Paper Table VII: 7.2 / 3.4 / 1.6 KOPS at SET-A/B/C sizes."""
        assert cpu_ntt_throughput_kops(2**12) == pytest.approx(7.2, rel=0.02)
        assert cpu_ntt_throughput_kops(2**13) == pytest.approx(3.4, rel=0.1)
        assert cpu_ntt_throughput_kops(2**14) == pytest.approx(1.6, rel=0.1)

    def test_hmult_order_of_magnitude(self):
        """Paper Table XII: 0.42 / 0.08 / 0.02 KOPS."""
        a = cpu_hmult_throughput_kops(ParameterSets.set_a())
        b = cpu_hmult_throughput_kops(ParameterSets.set_b())
        assert a == pytest.approx(0.42, rel=0.15)
        assert b == pytest.approx(0.08, rel=0.3)

    def test_gpu_speedup_over_cpu_is_large(self):
        """Table VII: three orders of magnitude."""
        wd = WarpDriveNtt(2**12).throughput_kops(1024)
        assert wd / cpu_ntt_throughput_kops(2**12) > 500


class TestPublishedData:
    def test_table_viii_speedups_match_paper_claims(self):
        """The embedded published rows reproduce the quoted speedups."""
        from repro.baselines.published import TABLE_VIII_LATENCY_US

        hmult = TABLE_VIII_LATENCY_US["HMULT"]
        speedup_c = hmult["100x_opt"]["SET-C"] / hmult["WarpDrive"]["SET-C"]
        assert speedup_c == pytest.approx(1.82, abs=0.02)

    def test_table_xii_ratios(self):
        from repro.baselines.published import TABLE_XII_HMULT_KOPS

        ratio = (
            TABLE_XII_HMULT_KOPS["WarpDrive"]["SET-A"]
            / TABLE_XII_HMULT_KOPS["TensorFHE"]["SET-A"]
        )
        assert ratio == pytest.approx(3.46, abs=0.02)
