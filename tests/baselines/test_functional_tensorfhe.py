"""The TensorFHE baseline's functional honesty: Algorithm 1 really
computes the NTT."""

import numpy as np
import pytest

from repro.baselines.tensorfhe import functional_five_stage_ntt
from repro.ntt import NttTables, reference_negacyclic_ntt
from repro.numtheory import find_ntt_prime


@pytest.mark.parametrize("n", [256, 1024])
def test_five_stage_matches_reference(n):
    q = find_ntt_prime(28, n)
    tables = NttTables(q, n)
    x = np.random.default_rng(0).integers(0, q, size=n, dtype=np.uint64)
    got = functional_five_stage_ntt(x, tables)
    assert np.array_equal(got, reference_negacyclic_ntt(x, tables))


def test_five_stage_batched():
    n = 256
    q = find_ntt_prime(28, n)
    tables = NttTables(q, n)
    x = np.random.default_rng(1).integers(0, q, size=(3, n),
                                          dtype=np.uint64)
    got = functional_five_stage_ntt(x, tables)
    for i in range(3):
        assert np.array_equal(
            got[i], reference_negacyclic_ntt(x[i], tables)
        )


def test_five_stage_agrees_with_warpdrive_plan():
    """TensorFHE's 1-level and WarpDrive's 2-level plans are different
    factorizations of the same transform."""
    from repro.core import WarpDriveNtt

    n = 4096
    q = find_ntt_prime(28, n)
    tables = NttTables(q, n)
    x = np.random.default_rng(2).integers(0, q, size=n, dtype=np.uint64)
    assert np.array_equal(
        functional_five_stage_ntt(x, tables),
        WarpDriveNtt(n).forward(x, tables),
    )
