"""Default-duplication regression: one registry default, every consumer.

``BootstrapConfig`` and the hand-counted schedule layer once held
independent literal copies of the same defaults (and drifted).  Both now
resolve through :func:`repro.tuning.knob_default`, which these tests
prove by overriding a default and watching *all* consumers move
together — a reintroduced literal copy fails here immediately.
"""

from repro.ckks.bootstrap import BootstrapConfig
from repro.ckks.params import ParameterSets
from repro.tuning import build_pipeline, knob_default, overriding_default
from repro.workloads.bootstrap_workload import (
    bootstrap_schedule,
    eval_mod_schedule,
)
from repro.workloads.recorded import RECORDED_BOOT_CONFIG, _recorded_boot_config


def _item_counts(schedule):
    return [(i.op, i.level, i.count, i.hoisted) for i in schedule.items]


def test_bootstrap_config_and_schedule_share_fuse_default():
    """Override ``boot.fuse`` once: the dataclass default, the
    hand-counted schedule and the built pipeline all move."""
    params = ParameterSets.boot()
    with overriding_default("boot.fft_factored", True), \
            overriding_default("boot.fuse", 4):
        assert BootstrapConfig().fuse == 4
        assert _item_counts(bootstrap_schedule(params)) == _item_counts(
            bootstrap_schedule(params, fft_factored=True, fuse=4)
        )
        assert build_pipeline().boot_config.fuse == 4
    # Scoped: everything snaps back after the context exits.
    assert BootstrapConfig().fuse == 1
    assert _item_counts(bootstrap_schedule(params)) == _item_counts(
        bootstrap_schedule(params, fft_factored=False, fuse=1)
    )


def test_sine_degree_default_single_source():
    with overriding_default("boot.sine_degree", 127):
        assert BootstrapConfig().sine_degree == 127
        assert _item_counts(eval_mod_schedule(10)) == _item_counts(
            eval_mod_schedule(10, degree=127)
        )


def test_schedule_defaults_move_with_registry():
    """A default changed in the registry changes the *priced* schedule —
    no call site holds a stale literal."""
    params = ParameterSets.boot()
    baseline = _item_counts(bootstrap_schedule(params))
    with overriding_default("boot.fft_factored", True):
        factored = _item_counts(bootstrap_schedule(params))
    assert factored != baseline
    assert factored == _item_counts(
        bootstrap_schedule(params, fft_factored=True)
    )


def test_recorded_boot_config_is_registry_view():
    """The calibrated recording dict is the ``recorded.*`` defaults —
    not an independent copy that could drift."""
    assert RECORDED_BOOT_CONFIG == {
        "proxy_log2n": knob_default("recorded.proxy_log2n"),
        "fuse": knob_default("recorded.fuse"),
        "sine_degree": knob_default("recorded.sine_degree"),
    }
    with overriding_default("recorded.fuse", 2):
        assert _recorded_boot_config()["fuse"] == 2


def test_bootstrap_config_fields_track_registry():
    for field_name, knob_name in (
        ("sine_degree", "boot.sine_degree"),
        ("eval_range", "boot.eval_range"),
        ("bsgs", "boot.bsgs"),
        ("fft_factored", "boot.fft_factored"),
        ("fuse", "boot.fuse"),
    ):
        assert getattr(BootstrapConfig(), field_name) == \
            knob_default(knob_name)
