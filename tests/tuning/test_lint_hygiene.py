"""The new config/gym packages are inside the static-analysis gates.

The repo-wide fhelint gate (tests/analysis/test_fhelint_repo.py) lints
all of ``src/``; this pins that ``repro.tuning`` and ``repro.gym`` are
actually part of that sweep and clean on their own, so a finding there
can never hide behind the aggregate count.
"""

from pathlib import Path

from repro.analysis.fhelint.runner import run_lint

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def test_tuning_and_gym_packages_are_lint_clean():
    result = run_lint([str(SRC / "tuning"), str(SRC / "gym")])
    assert result.files_checked >= 8
    assert result.active == [], "\n".join(
        f.render() for f in result.active
    )
