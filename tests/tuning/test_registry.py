"""The declarative knob registry: domains, declarations, defaults."""

import pytest

from repro.tuning import (
    Boolean,
    Choice,
    FloatRange,
    IntRange,
    KnobDomainError,
    KnobSpec,
    UnknownKnob,
    all_knobs,
    defaults,
    knob,
    knob_default,
    overriding_default,
    register_knob,
    render_registry,
)
from repro.tuning.knobs import DECLARING_MODULES


# ---- domains ---------------------------------------------------------------


def test_choice_domain():
    d = Choice(("a", "b", "c"))
    assert d.contains("b") and not d.contains("z")
    assert d.points() == ("a", "b", "c")
    assert "'b'" in d.describe()


def test_boolean_domain_rejects_ints():
    d = Boolean()
    assert d.contains(True) and d.contains(False)
    assert not d.contains(1) and not d.contains(0)
    assert d.points() == (False, True)


def test_int_range_domain():
    d = IntRange(1, 8)
    assert d.contains(1) and d.contains(8)
    assert not d.contains(0) and not d.contains(9)
    assert not d.contains(True)  # bools are not ints here
    assert not d.contains(None)
    assert d.points() == tuple(range(1, 9))


def test_int_range_optional_admits_none():
    d = IntRange(4, 512, optional=True, grid=(8, 16))
    assert d.contains(None)
    assert d.points() == (None, 8, 16)


def test_int_range_wide_subsamples():
    d = IntRange(1, 1000)
    pts = d.points()
    assert pts[0] == 1 and pts[-1] == 1000
    assert len(pts) < 20


def test_float_range_domain():
    d = FloatRange(1.0, 64.0)
    assert d.contains(6.5) and d.contains(64)
    assert not d.contains(0.5) and not d.contains(True)
    lo, mid, hi = d.points()
    assert (lo, hi) == (1.0, 64.0)


# ---- registry --------------------------------------------------------------


def test_every_declared_module_contributes_knobs():
    layers = {spec.layer for spec in all_knobs().values()}
    # One knob-owning layer per architectural tier of the stack.
    assert {"ckks", "workloads", "core", "ntt", "gpusim", "trace",
            "serving", "backend"} <= layers


def test_all_knobs_have_docs_and_valid_defaults():
    for name, spec in all_knobs().items():
        assert spec.doc, f"{name} has no doc"
        spec.validate(spec.resolve_default())


def test_unknown_knob_raises_with_known_names():
    with pytest.raises(UnknownKnob, match="boot.fuse"):
        knob("no.such.knob")


def test_cross_layer_redeclaration_rejected():
    spec = knob("boot.fuse")
    clone = KnobSpec(name="boot.fuse", layer="not-ckks",
                     domain=spec.domain, doc="x", default=1)
    with pytest.raises(ValueError, match="already declared"):
        register_knob(clone)
    assert knob("boot.fuse") is spec


def test_registration_validates_default():
    with pytest.raises(KnobDomainError):
        register_knob(KnobSpec(
            name="test.bad_default", layer="test",
            domain=IntRange(1, 4), doc="x", default=9,
        ))
    with pytest.raises(UnknownKnob):
        knob("test.bad_default")


def test_defaults_covers_every_knob():
    d = defaults()
    assert set(d) == set(all_knobs())
    assert d["boot.fuse"] == 1
    assert d["ntt.variant"] == "wd-fuse"


def test_overriding_default_scopes_and_restores():
    assert knob_default("boot.fuse") == 1
    with overriding_default("boot.fuse", 4):
        assert knob_default("boot.fuse") == 4
    assert knob_default("boot.fuse") == 1


def test_overriding_default_validates():
    with pytest.raises(KnobDomainError):
        with overriding_default("boot.fuse", 99):
            pass


def test_backend_knob_reads_env(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert knob_default("backend") == "numpy"
    monkeypatch.setenv("REPRO_BACKEND", "auto")
    assert knob_default("backend") == "auto"
    # Garbage env degrades to numpy instead of poisoning the registry.
    monkeypatch.setenv("REPRO_BACKEND", "quantum")
    assert knob_default("backend") == "numpy"


def test_render_registry_lists_every_knob():
    table = render_registry()
    for name in all_knobs():
        assert name in table


def test_declaring_modules_list_is_exhaustive():
    """Every layer string maps back to a module in DECLARING_MODULES —
    a knob declared from an unlisted module would vanish from fresh
    processes that import repro.tuning first."""
    import sys

    for module in DECLARING_MODULES:
        assert module in sys.modules  # all_knobs() imported them
