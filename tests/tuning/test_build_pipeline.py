"""``TuningConfig`` -> ``build_pipeline`` property suite.

The three contracts ISSUE acceptance names:

* every knob's assignment is observable on the built pipeline (through
  the spec's own ``observe`` hook);
* out-of-domain assignments raise at build time;
* ``to_dict()`` -> rebuild prices bit-identically.
"""

import pytest

from repro.tuning import (
    IntRange,
    KnobDomainError,
    TuningConfig,
    UnknownKnob,
    all_knobs,
    build_pipeline,
)


def _probe_value(spec):
    """An in-domain, non-None point, preferably not the default."""
    default = spec.resolve_default()
    pts = [p for p in spec.domain.points() if p is not None]
    non_default = [p for p in pts if p != default]
    return (non_default or pts)[0]


# ---- observability ---------------------------------------------------------


def test_every_knob_declares_an_observe_hook():
    missing = [n for n, s in all_knobs().items() if s.observe is None]
    assert missing == [], f"knobs without observe hooks: {missing}"


@pytest.mark.parametrize("name", sorted(all_knobs()))
def test_assignment_observable_on_built_pipeline(name):
    spec = all_knobs()[name]
    value = _probe_value(spec)
    pipe = build_pipeline(TuningConfig({name: value}))
    assert spec.observe(pipe) == value


def test_defaults_observable_too():
    pipe = build_pipeline()
    for name, spec in all_knobs().items():
        default = spec.resolve_default()
        if default is None:
            continue  # inherit sentinel: observed value is the layer's own
        assert spec.observe(pipe) == default, name


# ---- validation ------------------------------------------------------------


def test_unknown_name_raises_at_config_time():
    with pytest.raises(UnknownKnob):
        TuningConfig({"definitely.not.a.knob": 1})
    with pytest.raises(UnknownKnob):
        build_pipeline(**{"also.not.a.knob": 1})


@pytest.mark.parametrize("name", sorted(all_knobs()))
def test_out_of_domain_raises_at_build_time(name):
    spec = all_knobs()[name]
    bad = "definitely-out-of-domain"
    if spec.domain.contains(bad):  # pragma: no cover - defensive
        pytest.skip("domain admits arbitrary strings")
    cfg = TuningConfig({name: bad})  # config holds it...
    with pytest.raises(KnobDomainError, match=name.replace(".", r"\.")):
        build_pipeline(cfg)  # ...but can never be built


def test_cross_knob_constraint_raises_at_build_time():
    # toy has L=3, so dnum=15 violates [1, L+1] — the layer's own check.
    cfg = TuningConfig({"params.set": "toy", "ckks.dnum": 15})
    with pytest.raises(ValueError, match="dnum"):
        build_pipeline(cfg)


def test_optional_none_inherits_layer_value():
    pipe = build_pipeline(TuningConfig({"ckks.dnum": None}))
    assert pipe.params.dnum == pipe.params.dnum  # materialized
    assert pipe.params.dnum == build_pipeline().params.dnum


def test_gpu_overrides_apply_through_with_overrides():
    pipe = build_pipeline(TuningConfig({
        "gpu.model": "NVIDIA V100", "gpu.sm_count": 54,
        "gpu.tensor_macs_per_sm": 1024,
    }))
    assert pipe.device.name == "NVIDIA V100"
    assert pipe.device.sm_count == 54
    assert pipe.device.tensor_int8_macs_per_cycle_per_sm == 1024


# ---- config object semantics ----------------------------------------------


def test_replace_is_persistent():
    a = TuningConfig({"boot.fuse": 2})
    b = a.replace(**{"ntt.variant": "wd-cuda"})
    assert "ntt.variant" not in a and a["boot.fuse"] == 2
    assert b["boot.fuse"] == 2 and b["ntt.variant"] == "wd-cuda"


def test_key_is_canonical():
    a = TuningConfig({"boot.fuse": 2, "ntt.variant": "wd-cuda"})
    b = TuningConfig({"ntt.variant": "wd-cuda", "boot.fuse": 2})
    assert a.key() == b.key() and a == b and hash(a) == hash(b)


def test_effective_covers_every_knob():
    eff = TuningConfig({"boot.fuse": 3}).effective()
    assert set(eff) == set(all_knobs())
    assert eff["boot.fuse"] == 3


def test_validate_checks_effective_not_just_explicit():
    spec = all_knobs()["boot.fuse"]
    assert isinstance(spec.domain, IntRange)
    cfg = TuningConfig({"boot.fuse": 8})
    assert cfg.validate() is cfg


# ---- round-trip pricing ----------------------------------------------------


def test_to_dict_rebuild_prices_bit_identically():
    cfg = TuningConfig({
        "params.set": "SET-B", "ntt.variant": "wd-tensor",
        "geometry.threads_per_block": 512, "serving.batch": 4,
    })
    pipe = build_pipeline(cfg)
    rebuilt = build_pipeline(TuningConfig.from_dict(pipe.config.to_dict()))
    for op in ("hmult", "hrotate", "rescale"):
        a = pipe.scheduler.latency_us(op, batch=pipe.batch)
        b = rebuilt.scheduler.latency_us(op, batch=rebuilt.batch)
        assert a == b  # bit-identical, not approximately equal
    assert rebuilt.params == pipe.params
    assert rebuilt.device == pipe.device
    assert rebuilt.geometry == pipe.geometry
    assert rebuilt.boot_config == pipe.boot_config


def test_describe_mentions_the_load_bearing_fields():
    text = build_pipeline().describe()
    assert "SET-C" in text and "wd-fuse" in text and "batch=1" in text
