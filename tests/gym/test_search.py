"""Searchers: baseline-first guarantee, seeded determinism, plots."""

from repro.gym import (
    SEARCHERS,
    TuningEnv,
    evolutionary_search,
    fitness_svg,
    hill_climb,
    random_search,
    run_searcher,
)


def _points(result):
    return [(p.assignment, p.reward, p.latency_us, p.hbm_gb)
            for p in result.trajectory.points]


def test_first_evaluation_is_the_baseline():
    for name in SEARCHERS:
        env = TuningEnv("op:hmult")
        result = run_searcher(name, env, seed=0, **(
            {"generations": 2, "population": 3}
            if name == "evolutionary" else {"steps": 3}
        ))
        first = result.trajectory.points[0]
        assert first.assignment == env.default_assignment()
        assert first.reward == result.baseline_reward


def test_best_never_worse_than_baseline():
    for name in SEARCHERS:
        env = TuningEnv("op:hrotate")
        result = run_searcher(name, env, seed=1, **(
            {"generations": 2, "population": 4}
            if name == "evolutionary" else {"steps": 5}
        ))
        assert result.best_reward >= result.baseline_reward
        assert result.best_latency_us <= result.baseline_latency_us


def test_same_seed_reproduces_trajectory():
    for name, kwargs in (("random", {"steps": 6}),
                         ("hill", {"steps": 6}),
                         ("evolutionary",
                          {"generations": 2, "population": 4})):
        runs = [
            _points(run_searcher(name, TuningEnv("op:hmult"),
                                 seed=5, **kwargs))
            for _ in range(2)
        ]
        assert runs[0] == runs[1], name


def test_different_seeds_explore_differently():
    visited = set()
    for seed in (0, 1, 2, 3):
        result = random_search(TuningEnv("op:hmult"), steps=6, seed=seed)
        visited.add(tuple(
            tuple(sorted(p.assignment.items()))
            for p in result.trajectory.points
        ))
    assert len(visited) > 1  # the rng seed actually steers sampling


def test_hill_climb_incumbent_is_monotone():
    result = hill_climb(TuningEnv("op:hmult"), steps=10, seed=2)
    curve = result.trajectory.best_curve()
    assert curve == sorted(curve)
    assert result.evaluations == len(result.trajectory.points) <= 11


def test_evolutionary_budget_is_bounded():
    result = evolutionary_search(TuningEnv("op:hmult"),
                                 generations=3, population=4, seed=0)
    # gen 0: population evals; later gens: population - elite each.
    assert result.evaluations <= 3 * 4


def test_result_serializes():
    result = random_search(TuningEnv("op:hmult"), steps=3, seed=0)
    d = result.to_dict()
    assert d["searcher"] == "random"
    assert d["evaluations"] == len(d["trajectory"]["points"])
    assert d["best_latency_us"] <= d["baseline_latency_us"]


def test_fitness_svg_renders_all_curves():
    results = [random_search(TuningEnv("op:hmult"), steps=3, seed=s)
               for s in (0, 1)]
    svg = fitness_svg(results)
    assert svg.startswith("<svg") and svg.endswith("</svg>")
    assert svg.count("<polyline") == 2
    assert "baseline" in svg
