"""TuningEnv: action space, pricing, caching, trajectories.

Everything here runs on the cheap ``op:<name>`` workloads — one
scheduler plan per evaluation, no functional recording — so the suite
stays tier-1 fast.
"""

import pytest

from repro.gym import DEFAULT_SEARCH_KNOBS, TuningEnv
from repro.tuning import TuningConfig, UnknownKnob, all_knobs


def test_action_space_comes_from_declared_domains():
    env = TuningEnv("op:hmult")
    space = env.space()
    assert set(space) == set(DEFAULT_SEARCH_KNOBS)
    specs = all_knobs()
    for name, pts in space.items():
        assert pts == specs[name].domain.points()


def test_default_assignment_is_registry_defaults():
    env = TuningEnv("op:hmult")
    specs = all_knobs()
    assert env.default_assignment() == {
        name: specs[name].resolve_default()
        for name in DEFAULT_SEARCH_KNOBS
    }


def test_rejects_unknown_workload_objective_and_knobs():
    with pytest.raises(ValueError, match="workload"):
        TuningEnv("nonsense")
    with pytest.raises(ValueError, match="objective"):
        TuningEnv("op:hmult", objective="vibes")
    with pytest.raises(UnknownKnob):
        TuningEnv("op:hmult", knobs=("no.such",))


def test_step_prices_and_logs():
    env = TuningEnv("op:hmult")
    action = env.reset(seed=7)
    _, reward, info = env.step(action)
    assert reward == -info["latency_us"] < 0
    assert info["cached"] is False
    assert len(env.trajectory.points) == 1
    assert env.trajectory.seed == 7
    point = env.trajectory.points[0]
    assert point.assignment == action
    assert point.latency_us == info["latency_us"]


def test_step_result_depends_on_assignment():
    env = TuningEnv("op:hmult")
    _, slow, _ = env.step({"ntt.variant": "wd-cuda"})
    _, fast, _ = env.step({"ntt.variant": "wd-fuse"})
    assert slow != fast  # the knob actually reaches the priced stack


def test_evaluation_cache_hits_on_revisit():
    env = TuningEnv("op:hmult")
    action = env.default_assignment()
    _, r1, info1 = env.step(action)
    _, r2, info2 = env.step(action)
    assert info1["cached"] is False and info2["cached"] is True
    assert r1 == r2


def test_cache_survives_reset():
    env = TuningEnv("op:hmult")
    action = env.reset()
    env.step(action)
    env.reset(seed=1)
    _, _, info = env.step(action)
    assert info["cached"] is True
    assert len(env.trajectory.points) == 1  # trajectory did restart


def test_throughput_objective_scales_with_batch():
    env = TuningEnv("op:hmult", objective="throughput_per_gb",
                    knobs=("serving.batch",))
    _, r1, i1 = env.step({"serving.batch": 1})
    _, r8, i8 = env.step({"serving.batch": 8})
    assert r1 > 0 and r8 > 0
    # Batching amortizes launch overhead: 8 ops cost less than 8x one.
    assert i8["latency_us"] < 8 * i1["latency_us"]


def test_base_config_pins_unsearched_knobs():
    base = TuningConfig({"params.set": "SET-B"})
    env = TuningEnv("op:hmult", base=base)
    _, reward_b, _ = env.step(env.default_assignment())
    _, reward_c, _ = TuningEnv("op:hmult").step(
        TuningEnv("op:hmult").default_assignment()
    )
    assert reward_b != reward_c  # smaller set, different pricing


def test_trajectory_logs_backend_and_base_knobs():
    """The declared backend knob (ex-REPRO_BACKEND) is visible in every
    trajectory, alongside the other unsearched knobs the episode ran
    under."""
    env = TuningEnv("op:hmult")
    d = env.trajectory.to_dict()
    assert d["base"]["backend"] in ("auto", "numpy", "numba", "cupy")
    assert d["base"]["params.set"] == "SET-C"
    assert "ntt.variant" not in d["base"]  # searched, logged per point
    env.reset(seed=2)
    assert env.trajectory.to_dict()["base"]["backend"] == \
        d["base"]["backend"]


def test_trajectory_best_and_curve():
    env = TuningEnv("op:hmult")
    for variant in ("wd-cuda", "wd-fuse", "wd-tensor"):
        env.step({"ntt.variant": variant})
    traj = env.trajectory
    curve = traj.best_curve()
    assert len(curve) == 3
    assert curve == sorted(curve)  # best-so-far is monotone
    assert traj.best.reward == max(p.reward for p in traj.points)
    d = traj.to_dict()
    assert d["best"]["reward"] == traj.best.reward
    assert len(d["points"]) == 3
