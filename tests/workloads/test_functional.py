"""Functional workload minis: encrypted training and convolution."""

import numpy as np
import pytest

from repro.ckks import CkksContext, CkksParams
from repro.workloads import (
    EncryptedConv2d,
    EncryptedLogisticRegression,
    conv2d_reference,
    plaintext_reference,
)


@pytest.fixture(scope="module")
def ctx():
    params = CkksParams(n=64, max_level=12, num_special=2, dnum=13,
                        scale_bits=26, name="workload-toy")
    return CkksContext.create(params, seed=4)


class TestEncryptedLogisticRegression:
    @pytest.fixture(scope="class")
    def trained(self, ctx):
        rots = EncryptedLogisticRegression.required_rotations(ctx.slots)
        keys = ctx.keygen(rotations=rots)
        rng = np.random.default_rng(0)
        x = rng.normal(size=(4, 8)) * 0.5
        y = np.array([1.0, 0.0, 1.0, 0.0])
        model = EncryptedLogisticRegression(ctx, keys, learning_rate=1.0)
        w_enc = model.train(x, y, iterations=2)
        w_ref = plaintext_reference(x, y, iterations=2)
        return x, y, w_enc, w_ref

    def test_matches_plaintext_reference(self, trained):
        _, _, w_enc, w_ref = trained
        assert np.max(np.abs(w_enc - w_ref)) < 5e-3

    def test_training_moved_weights(self, trained):
        _, _, w_enc, _ = trained
        assert np.max(np.abs(w_enc)) > 0.05

    def test_predictions_separate_classes(self, trained):
        x, y, w_enc, _ = trained
        z = x @ w_enc
        # Higher score for the positive class on average.
        assert z[y == 1].mean() > z[y == 0].mean()

    def test_feature_limit(self, ctx):
        keys = ctx.keygen()
        model = EncryptedLogisticRegression(ctx, keys)
        with pytest.raises(ValueError):
            model.train(np.zeros((2, ctx.slots + 1)), np.zeros(2))


class TestEncryptedConv2d:
    @pytest.fixture(scope="class")
    def setup(self, ctx):
        height, width = 4, 4
        rots = EncryptedConv2d.required_rotations(width, ctx.slots)
        keys = ctx.keygen(rotations=rots)
        rng = np.random.default_rng(1)
        image = rng.uniform(-1, 1, size=(height, width))
        kernel = np.array([[0.1, 0.2, 0.1],
                           [0.2, 0.4, 0.2],
                           [0.1, 0.2, 0.1]])
        return keys, image, kernel, height, width

    def test_matches_reference(self, ctx, setup):
        keys, image, kernel, h, w = setup
        conv = EncryptedConv2d(ctx, keys, kernel)
        flat = np.zeros(ctx.slots)
        flat[: h * w] = image.reshape(-1)
        ct = ctx.encrypt(flat, keys)
        out = conv.forward(ct, h, w)
        dec = ctx.decrypt_decode_real(out, keys)[: h * w].reshape(h, w)
        expected = conv2d_reference(image, kernel)
        assert np.max(np.abs(dec - expected)) < 1e-2

    def test_square_activation(self, ctx, setup):
        keys, image, kernel, h, w = setup
        conv = EncryptedConv2d(ctx, keys, kernel)
        flat = np.zeros(ctx.slots)
        flat[: h * w] = image.reshape(-1)
        ct = ctx.encrypt(flat, keys)
        out = conv.forward(ct, h, w, square_activation=True)
        dec = ctx.decrypt_decode_real(out, keys)[: h * w].reshape(h, w)
        expected = conv2d_reference(image, kernel) ** 2
        assert np.max(np.abs(dec - expected)) < 2e-2

    def test_kernel_shape_check(self, ctx, setup):
        keys = setup[0]
        with pytest.raises(ValueError):
            EncryptedConv2d(ctx, keys, np.zeros((2, 2)))

    def test_required_rotations_nonempty(self, ctx):
        rots = EncryptedConv2d.required_rotations(4, ctx.slots)
        assert len(rots) == 8  # 9 positions minus the identity
