"""Tests for the AES-128-CTR substrate (FIPS-197 / SP 800-38A)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.aes import (
    BLOCK_BYTES,
    ctr_encrypt,
    ctr_keystream,
    encrypt_block,
    expand_key,
)

FIPS_KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
FIPS_PT = bytes.fromhex("00112233445566778899aabbccddeeff")
FIPS_CT = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")

# NIST AESAVS known-answer (key = 0, varying plaintext) GFSbox vector #1.
GFSBOX_PT = bytes.fromhex("f34481ec3cc627bacd5dc3fb08f273e6")
GFSBOX_CT = bytes.fromhex("0336763e966d92595a567cc9ce537f5e")


class TestBlockCipher:
    def test_fips197_appendix_c(self):
        assert bytes(encrypt_block(list(FIPS_PT), list(FIPS_KEY))) == FIPS_CT

    def test_nist_gfsbox_vector(self):
        zero_key = [0] * 16
        assert bytes(encrypt_block(list(GFSBOX_PT), zero_key)) == GFSBOX_CT

    def test_rejects_bad_block(self):
        with pytest.raises(ValueError):
            encrypt_block([0] * 15, list(FIPS_KEY))

    def test_rejects_bad_key(self):
        with pytest.raises(ValueError):
            expand_key([0] * 8)

    def test_key_schedule_shape(self):
        keys = expand_key(list(FIPS_KEY))
        assert len(keys) == 11
        assert all(len(k) == 16 for k in keys)

    def test_key_schedule_first_round_is_key(self):
        keys = expand_key(list(FIPS_KEY))
        assert bytes(keys[0]) == FIPS_KEY

    def test_fips197_a1_expanded_key_tail(self):
        # FIPS-197 Appendix A.1 (key 2b7e1516...): w43 = b6630ca6.
        a1_key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        keys = expand_key(list(a1_key))
        assert bytes(keys[10])[-4:] == bytes.fromhex("b6630ca6")


class TestCtrMode:
    def test_roundtrip(self):
        data = bytes(range(256)) * 3
        nonce = list(range(12))
        enc = ctr_encrypt(data, list(FIPS_KEY), nonce)
        assert enc != data
        assert ctr_encrypt(enc, list(FIPS_KEY), nonce) == data

    def test_keystream_blocks_differ(self):
        ks = ctr_keystream(list(FIPS_KEY), [0] * 12, 4)
        blocks = [ks[i:i + BLOCK_BYTES] for i in range(0, 64, BLOCK_BYTES)]
        assert len(set(blocks)) == 4

    def test_keystream_matches_block_cipher(self):
        ks = ctr_keystream(list(FIPS_KEY), [0] * 12, 2)
        expected0 = bytes(encrypt_block([0] * 12 + [0, 0, 0, 0],
                                        list(FIPS_KEY)))
        expected1 = bytes(encrypt_block([0] * 12 + [0, 0, 0, 1],
                                        list(FIPS_KEY)))
        assert ks[:16] == expected0
        assert ks[16:32] == expected1

    def test_bad_nonce(self):
        with pytest.raises(ValueError):
            ctr_keystream(list(FIPS_KEY), [0] * 8, 1)

    @settings(max_examples=20, deadline=None)
    @given(st.binary(min_size=1, max_size=200))
    def test_roundtrip_property(self, data):
        nonce = [7] * 12
        assert ctr_encrypt(
            ctr_encrypt(data, list(FIPS_KEY), nonce), list(FIPS_KEY), nonce
        ) == data
