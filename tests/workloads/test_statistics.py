"""Tests for encrypted aggregate statistics."""

import numpy as np
import pytest

from repro.ckks import CkksContext, CkksParams
from repro.ckks.slots import SlotOps
from repro.workloads.statistics import EncryptedStatistics


@pytest.fixture(scope="module")
def ctx():
    params = CkksParams(n=64, max_level=10, num_special=2, dnum=11,
                        scale_bits=26, name="stats-toy")
    return CkksContext.create(params, seed=31)


@pytest.fixture(scope="module")
def keys(ctx):
    return ctx.keygen(rotations=SlotOps.required_rotations(ctx.slots))


@pytest.fixture(scope="module")
def stats(ctx):
    return EncryptedStatistics(ctx)


@pytest.fixture(scope="module")
def data(ctx):
    rng = np.random.default_rng(2)
    return rng.uniform(-0.8, 0.8, ctx.slots)


class TestEncryptedStatistics:
    def test_mean(self, ctx, keys, stats, data):
        ct = ctx.encrypt(data, keys)
        got = ctx.decrypt_decode_real(stats.mean(ct, keys), keys)
        assert np.max(np.abs(got - data.mean())) < 2e-3

    def test_mean_with_count(self, ctx, keys, stats, data):
        ct = ctx.encrypt(data, keys)
        got = ctx.decrypt_decode_real(
            stats.mean(ct, keys, count=10), keys
        )
        assert abs(got[0] - data[:10].mean()) < 2e-3

    def test_variance(self, ctx, keys, stats, data):
        ct = ctx.encrypt(data, keys)
        got = ctx.decrypt_decode_real(stats.variance(ct, keys), keys)
        assert np.max(np.abs(got - data.var())) < 5e-3

    def test_covariance(self, ctx, keys, stats, data):
        rng = np.random.default_rng(3)
        other = 0.5 * data + rng.uniform(-0.2, 0.2, len(data))
        ct_x = ctx.encrypt(data, keys)
        ct_y = ctx.encrypt(other, keys)
        got = ctx.decrypt_decode_real(
            stats.covariance(ct_x, ct_y, keys), keys
        )
        expected = np.mean(data * other) - data.mean() * other.mean()
        assert np.max(np.abs(got - expected)) < 5e-3

    def test_covariance_of_self_is_variance(self, ctx, keys, stats, data):
        ct = ctx.encrypt(data, keys)
        cov = ctx.decrypt_decode_real(
            stats.covariance(ct, ctx.encrypt(data, keys), keys), keys
        )
        var = ctx.decrypt_decode_real(stats.variance(ct, keys), keys)
        assert np.max(np.abs(cov - var)) < 5e-3

    def test_center(self, ctx, keys, stats, data):
        ct = ctx.encrypt(data, keys)
        got = ctx.decrypt_decode_real(stats.center(ct, keys), keys)
        assert np.max(np.abs(got - (data - data.mean()))) < 3e-3
        assert abs(got.mean()) < 3e-3
