"""Tests for encrypted MLP inference."""

import numpy as np
import pytest

from repro.ckks import CkksContext, CkksParams
from repro.workloads.mlp import (
    DenseLayer,
    EncryptedMlp,
    plaintext_mlp,
    random_mlp,
)


@pytest.fixture(scope="module")
def ctx():
    params = CkksParams(n=64, max_level=12, num_special=2, dnum=13,
                        scale_bits=26, name="mlp-toy")
    return CkksContext.create(params, seed=17)


@pytest.fixture(scope="module")
def network(ctx):
    rng = np.random.default_rng(4)
    layers = random_mlp(rng, [8, 6, 3])
    mlp = EncryptedMlp(ctx, layers)
    keys = ctx.keygen(rotations=mlp.required_rotations())
    return layers, mlp, keys


class TestEncryptedMlp:
    def test_matches_plaintext(self, ctx, network):
        layers, mlp, keys = network
        rng = np.random.default_rng(9)
        x = rng.normal(size=8) * 0.5
        vec = np.zeros(ctx.slots)
        vec[:8] = x
        out = mlp.infer(ctx.encrypt(vec, keys), keys)
        got = ctx.decrypt_decode_real(out, keys)[:3]
        assert np.max(np.abs(got - plaintext_mlp(layers, x))) < 2e-3

    def test_multiple_inputs_consistent(self, ctx, network):
        layers, mlp, keys = network
        rng = np.random.default_rng(10)
        for _ in range(3):
            x = rng.normal(size=8) * 0.4
            vec = np.zeros(ctx.slots)
            vec[:8] = x
            out = mlp.infer(ctx.encrypt(vec, keys), keys)
            got = ctx.decrypt_decode_real(out, keys)[:3]
            assert np.max(np.abs(got - plaintext_mlp(layers, x))) < 2e-3

    def test_levels_accounting(self, ctx, network):
        _, mlp, _ = network
        # 2 transforms + 1 deg-3 activation (3 levels): 2 + 3 = 5.
        assert mlp.levels_needed() == 5

    def test_depth_consumed_matches(self, ctx, network):
        layers, mlp, keys = network
        vec = np.zeros(ctx.slots)
        ct = ctx.encrypt(vec, keys)
        out = mlp.infer(ct, keys)
        assert ct.level - out.level == mlp.levels_needed()

    def test_oversized_layer_rejected(self, ctx):
        with pytest.raises(ValueError):
            EncryptedMlp(ctx, [DenseLayer(
                weights=np.zeros((ctx.slots + 1, 4)), bias=np.zeros(4)
            )])

    def test_linear_only_network(self, ctx):
        """A single linear layer is just an encrypted mat-vec."""
        rng = np.random.default_rng(11)
        w = rng.normal(size=(4, 6)) * 0.3
        b = rng.normal(size=4) * 0.1
        mlp = EncryptedMlp(ctx, [DenseLayer(w, b, activate=False)])
        keys = ctx.keygen(rotations=mlp.required_rotations())
        x = rng.normal(size=6) * 0.5
        vec = np.zeros(ctx.slots)
        vec[:6] = x
        out = mlp.infer(ctx.encrypt(vec, keys), keys)
        got = ctx.decrypt_decode_real(out, keys)[:4]
        assert np.max(np.abs(got - (w @ x + b))) < 1e-3
