"""Tests for workload schedules and their pricing."""

import pytest

from repro.ckks import ParameterSets
from repro.core import OperationScheduler
from repro.workloads import (
    WorkloadSchedule,
    bootstrap_schedule,
    helr_iteration_schedule,
    resnet20_schedule,
    simulate_bootstrap,
    simulate_helr_iteration,
    simulate_resnet20,
    simulate_transcipher,
    transcipher_schedule,
)


@pytest.fixture(scope="module")
def boot_sched():
    return OperationScheduler(ParameterSets.boot())


class TestScheduleContainer:
    def test_add_and_counts(self):
        s = WorkloadSchedule("t").add("hmult", 3, 2).add("hadd", 3, 5)
        counts = s.op_counts()
        assert counts == {"hmult": 2, "hadd": 5}

    def test_extend(self):
        a = WorkloadSchedule("a").add("hadd", 1, 1)
        b = WorkloadSchedule("b").add("hmult", 1, 1)
        a.extend(b)
        assert len(a.items) == 2

    def test_hoisted_rotations_are_cheaper(self, boot_sched):
        full = WorkloadSchedule("f").add("hrotate", 10, 10)
        hoisted = WorkloadSchedule("h").add("hrotate", 10, 10, hoisted=True)
        assert (
            hoisted.price(boot_sched).total_us
            < full.price(boot_sched).total_us
        )

    def test_price_caches_per_op_level(self, boot_sched):
        s = WorkloadSchedule("t")
        for _ in range(50):
            s.add("hadd", 5, 1)
        timing = s.price(boot_sched)
        assert timing.total_us > 0

    def test_timing_conversions(self, boot_sched):
        t = WorkloadSchedule("t").add("hadd", 5, 1).price(boot_sched,
                                                          batch=4)
        assert t.total_ms == pytest.approx(t.total_us / 1e3)
        assert t.amortized_ms == pytest.approx(t.total_ms / 4)


class TestBootstrapSchedule:
    def test_contains_all_stages(self):
        sched = bootstrap_schedule()
        notes = {i.note for i in sched.items}
        assert any("StC" in n for n in notes)
        assert any("CtS" in n for n in notes)
        assert any("EvalMod" in n for n in notes)
        assert any("ModRaise" in n for n in notes)

    def test_uses_core_ops_only(self):
        from repro.core.scheduler import HOMOMORPHIC_OPS

        for item in bootstrap_schedule().items:
            assert item.op in HOMOMORPHIC_OPS

    def test_simulated_time_in_range(self, boot_sched):
        """Paper: 121 ms at BS=1; the simulator's documented optimism is
        ~2x, so accept 20-200 ms."""
        t = simulate_bootstrap(scheduler=boot_sched)
        assert 20 < t.total_ms < 200

    def test_batching_amortizes(self, boot_sched):
        t1 = simulate_bootstrap(scheduler=boot_sched, batch=1)
        t16 = simulate_bootstrap(scheduler=boot_sched, batch=16)
        assert t16.amortized_ms < t1.amortized_ms


class TestHelrSchedule:
    def test_iteration_has_sigmoid_and_boot(self):
        notes = {i.note for i in helr_iteration_schedule().items}
        assert any("sigmoid" in n for n in notes)
        assert any("boot" in n for n in notes)

    def test_time_comparable_to_boot(self):
        """Paper: HELR 113 ms/iter vs Boot 121 ms — same scale."""
        helr = simulate_helr_iteration()
        boot = simulate_bootstrap()
        assert 0.5 < helr.total_ms / boot.total_ms < 2.5


class TestResnetSchedule:
    def test_includes_bootstraps(self):
        notes = {i.note for i in resnet20_schedule().items}
        assert any(n.startswith("boot") for n in notes)

    def test_all_stages_present(self):
        notes = {i.note for i in resnet20_schedule().items}
        assert any("stem" in n for n in notes)
        assert any("s2b2" in n for n in notes)
        assert any("fc" in n for n in notes)

    def test_total_seconds_in_range(self):
        """Paper: 5.88 s at BS=1; accept 1-12 s given sim optimism."""
        t = simulate_resnet20()
        assert 1.0 < t.total_s < 12.0

    def test_resnet_much_slower_than_boot(self):
        assert simulate_resnet20().total_us > 10 * simulate_bootstrap(
        ).total_us


class TestTranscipherSchedule:
    def test_ten_rounds(self):
        notes = {i.note for i in transcipher_schedule().items}
        for rnd in range(10):
            assert any(n.startswith(f"round{rnd}.") for n in notes)

    def test_latency_in_range(self):
        """Paper: 3.5 min; accept 0.7-7 given sim optimism."""
        r = simulate_transcipher()
        assert 0.7 < r.latency_min < 7.0

    def test_beats_cpu_baseline(self):
        from repro.workloads import cpu_transcipher_minutes

        r = simulate_transcipher()
        assert cpu_transcipher_minutes() / r.latency_min > 10

    def test_throughput_metric(self):
        r = simulate_transcipher()
        assert r.throughput_kb_per_s > 0
