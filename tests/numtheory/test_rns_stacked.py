"""Bit-exactness of the digit-batched ModUp and the N-D RNS conversions.

``extend_basis_stacked`` must reproduce per-digit ``extend_basis`` calls
exactly (canonical residues; lazy outputs reduce to them), and the N-D
generalizations of ``extend_basis`` / ``mod_down`` / ``mod_down_exact_t``
must equal their historical 2-D behavior slice by slice — including the
single-source-prime fast path the K=1 ModDown takes.
"""

import numpy as np
import pytest

from repro.numtheory import find_ntt_primes
from repro.numtheory.rns import (
    RNSBasis,
    extend_basis,
    extend_basis_stacked,
    mod_down,
    mod_down_exact_t,
)

N = 64


def _bases(num_source, num_target):
    primes = find_ntt_primes(num_source + num_target, 28, N)
    return (RNSBasis(primes[:num_source]),
            RNSBasis(primes[num_source:num_source + num_target]))


class TestExtendBasisStacked:
    @pytest.mark.parametrize("groups", [
        [[0], [1], [2], [3]],               # alpha == 1 (fast path)
        [[0, 1], [2, 3]],                   # alpha == 2
        [[0, 1, 2], [3]],                   # ragged digits (low level)
        [[0], [1, 2]],                      # partial coverage
    ])
    def test_matches_per_digit_extend(self, groups):
        source, target = _bases(4, 5)
        full = RNSBasis(tuple(source.moduli) + tuple(target.moduli))
        for seed in range(20):
            rng = np.random.default_rng(seed)
            residues = source.random(N, rng)
            got = extend_basis_stacked(residues, groups, source, full)
            assert got.shape == (len(full), len(groups), N)
            for gi, g in enumerate(groups):
                sub = RNSBasis([source.moduli[i] for i in g])
                ref = extend_basis(residues[list(g)], sub, full)
                assert np.array_equal(got[:, gi], ref), \
                    f"groups={groups} digit={gi} seed={seed}"

    def test_lazy_reduces_to_canonical(self):
        """alpha==1 lazy output is the unreduced broadcast: reducing it
        recovers the canonical tensor bit-for-bit."""
        source, target = _bases(4, 4)
        full = RNSBasis(tuple(source.moduli) + tuple(target.moduli))
        groups = [[0], [1], [2], [3]]
        rng = np.random.default_rng(5)
        residues = source.random(N, rng)
        canonical = extend_basis_stacked(residues, groups, source, full)
        lazy = extend_basis_stacked(
            residues, groups, source, full, lazy=True
        )
        assert (lazy < 2**32).all()
        assert np.array_equal(full.batch.reduce_mat(lazy), canonical)

    def test_rejects_empty_digit(self):
        source, target = _bases(2, 2)
        with pytest.raises(ValueError):
            extend_basis_stacked(source.zero(N), [[0], []], source, target)


class TestNdExtendAndModDown:
    def test_nd_extend_matches_2d_slices(self):
        source, target = _bases(3, 4)
        rng = np.random.default_rng(1)
        batch = np.stack([source.random(N, rng) for _ in range(5)], axis=1)
        for exact in (False, True):
            got = extend_basis(batch, source, target, exact=exact)
            assert got.shape == (len(target), 5, N)
            for k in range(5):
                ref = extend_basis(
                    np.ascontiguousarray(batch[:, k]), source, target,
                    exact=exact,
                )
                assert np.array_equal(got[:, k], ref), f"exact={exact} k={k}"

    def test_single_prime_source_fast_path(self):
        """len(source)==1 (the K=1 ModDown of the Table VI sets): the
        extension is x mod t exactly, with no ratio correction."""
        source, target = _bases(1, 5)
        rng = np.random.default_rng(2)
        residues = source.random(N, rng)
        for exact in (False, True):
            got = extend_basis(residues, source, target, exact=exact)
            q = np.array(target.moduli, dtype=np.uint64)[:, None]
            assert np.array_equal(got, residues[0][None, :] % q)

    @pytest.mark.parametrize("num_special", [1, 2])
    def test_nd_mod_down_matches_2d_slices(self, num_special):
        main, special = _bases(4, num_special)
        full_moduli = tuple(main.moduli) + tuple(special.moduli)
        full = RNSBasis(full_moduli)
        rng = np.random.default_rng(3)
        batch = np.stack([full.random(N, rng) for _ in range(4)], axis=1)
        got = mod_down(batch, main, special)
        assert got.shape == (len(main), 4, N)
        for k in range(4):
            ref = mod_down(
                np.ascontiguousarray(batch[:, k]), main, special
            )
            assert np.array_equal(got[:, k], ref), f"k={k}"

    def test_nd_mod_down_exact_t_matches_2d_slices(self):
        main, special = _bases(3, 2)
        full = RNSBasis(tuple(main.moduli) + tuple(special.moduli))
        t = 65537
        rng = np.random.default_rng(4)
        batch = np.stack([full.random(N, rng) for _ in range(3)], axis=1)
        got = mod_down_exact_t(batch, main, special, t)
        for k in range(3):
            ref = mod_down_exact_t(
                np.ascontiguousarray(batch[:, k]), main, special, t
            )
            assert np.array_equal(got[:, k], ref), f"k={k}"

    def test_mod_down_shape_validation(self):
        main, special = _bases(3, 1)
        with pytest.raises(ValueError):
            mod_down(main.zero(N), main, special)
