"""Regression tests for the float64 ratio-floor guard in basis extension.

The exact extension estimates the overshoot ``u = floor(sum_i y_i / q_i)``
(and the signed extension its fractional part) with an accumulated float64
sum. For adversarial residues — values within a few units of ``0``, ``Q``
or ``Q/2`` on deep prime chains — the accumulated rounding error can push
the estimate across the floor / sign boundary, making the result off by a
full ``Q`` (the signed case misclassified ``x = Q - 1`` as positive before
the guard). These tests pin every boundary lane to bigint CRT ground
truth.
"""

import numpy as np
import pytest

from repro.numtheory import find_ntt_primes
from repro.numtheory.rns import (
    RNSBasis,
    extend_basis,
    extend_basis_signed,
    mod_down,
)

# A deep chain (24 x 30-bit primes, Q ~ 2**720) maximizes accumulated
# float error; a disjoint target observes the extended value.
PRIMES = find_ntt_primes(28, 30, 512)
SOURCE = RNSBasis(PRIMES[:24])
TARGET = RNSBasis(PRIMES[24:])

Q = SOURCE.product


def boundary_values():
    """Adversarial x: hugging 0, Q and Q/2 from both sides."""
    vals = []
    vals += [k for k in range(17)]
    vals += [Q - k for k in range(1, 17)]
    vals += [Q // 2 + k for k in range(-16, 17)]
    return vals


def to_rows(values, basis):
    return np.stack([
        np.array([v % q for v in values], dtype=np.uint64)
        for q in basis.moduli
    ])


def centered(v):
    return v - Q if 2 * (v % Q) >= Q else v % Q


class TestExactExtensionBoundary:
    def test_exact_extension_at_floor_boundaries(self):
        values = boundary_values()
        out = extend_basis(to_rows(values, SOURCE), SOURCE, TARGET,
                           exact=True)
        for j, t in enumerate(TARGET.moduli):
            assert out[j].tolist() == [v % t for v in values], \
                f"exact extension off by a multiple of Q mod {t}"

    def test_exact_extension_trailing_batch_axes(self):
        values = boundary_values()[:16]
        rows = to_rows(values, SOURCE).reshape(len(SOURCE), 4, 4)
        out = extend_basis(rows, SOURCE, TARGET, exact=True)
        for j, t in enumerate(TARGET.moduli):
            assert out[j].reshape(-1).tolist() == [v % t for v in values]

    def test_random_values_still_exact(self):
        rng = np.random.default_rng(7)
        values = [int(rng.integers(0, 1 << 62)) % Q for _ in range(64)]
        out = extend_basis(to_rows(values, SOURCE), SOURCE, TARGET,
                           exact=True)
        for j, t in enumerate(TARGET.moduli):
            assert out[j].tolist() == [v % t for v in values]


class TestSignedExtensionBoundary:
    def test_sign_decision_at_boundaries(self):
        values = boundary_values()
        out = extend_basis_signed(to_rows(values, SOURCE), SOURCE, TARGET)
        for j, t in enumerate(TARGET.moduli):
            expected = [centered(v) % t for v in values]
            assert out[j].tolist() == expected, \
                f"signed extension misclassified a boundary lane mod {t}"

    def test_near_q_is_negative(self):
        # The historical failure: x = Q - 1 has x/Q within 2**-700 of 1,
        # the float sum rounds to exactly 1.0, the fractional part
        # collapses to 0 and the lane was classified positive (+Q off).
        out = extend_basis_signed(to_rows([Q - 1], SOURCE), SOURCE, TARGET)
        for j, t in enumerate(TARGET.moduli):
            assert out[j].tolist() == [(-1) % t]


class TestModDownBoundary:
    def test_mod_down_rounding_at_boundaries(self):
        # ModDown consumes extend_basis(exact=True) on the special rows;
        # a floor slip there shifts the quotient by a full multiple of P.
        main = RNSBasis(PRIMES[:6])
        special = RNSBasis(PRIMES[6:10])
        p = special.product
        big_q = main.product * p
        values = [0, 1, p - 1, p, p + 1, big_q - 1, big_q - p,
                  big_q // 2, big_q // 2 + 1]
        both = RNSBasis(main.moduli + special.moduli)
        out = mod_down(to_rows(values, both), main, special)
        for j, q in enumerate(main.moduli):
            got = out[j].tolist()
            for k, v in enumerate(values):
                # exact extension of [x]_P makes this a floor division
                assert (got[k] - v // p) % q == 0, \
                    f"ModDown(x={v}) wrong mod {q}"


@pytest.mark.parametrize("depth", [2, 8, 16, 24])
def test_guard_depth_sweep(depth):
    source = RNSBasis(PRIMES[:depth])
    target = RNSBasis(PRIMES[24:])
    q_prod = source.product
    values = [0, 1, q_prod - 1, q_prod // 2, q_prod // 2 + 1]
    rows = np.stack([
        np.array([v % q for v in values], dtype=np.uint64)
        for q in source.moduli
    ])
    out = extend_basis(rows, source, target, exact=True)
    for j, t in enumerate(target.moduli):
        assert out[j].tolist() == [v % t for v in values]
