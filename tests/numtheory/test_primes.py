"""Tests for NTT-friendly prime chains."""

import pytest

from repro.numtheory import (
    PrimeChain,
    build_prime_chain,
    find_ntt_prime,
    find_ntt_primes,
    is_probable_prime,
)


class TestFindNttPrime:
    def test_congruence_and_primality(self):
        for logn in [10, 12, 14, 16]:
            n = 1 << logn
            p = find_ntt_prime(31, n)
            assert is_probable_prime(p)
            assert p % (2 * n) == 1
            assert p < 1 << 31

    def test_below_constraint_gives_descending_chain(self):
        n = 4096
        p1 = find_ntt_prime(31, n)
        p2 = find_ntt_prime(31, n, below=p1)
        assert p2 < p1
        assert p2 % (2 * n) == 1

    def test_rejects_oversized_words(self):
        with pytest.raises(ValueError):
            find_ntt_prime(33, 4096)

    def test_exhaustion_raises(self):
        # No room between floor and ceiling.
        with pytest.raises(ValueError):
            find_ntt_prime(31, 4096, below=1 << 30)


class TestFindNttPrimes:
    def test_distinct_and_valid(self):
        primes = find_ntt_primes(8, 28, 8192)
        assert len(set(primes)) == 8
        for p in primes:
            assert is_probable_prime(p)
            assert p % (2 * 8192) == 1


class TestPrimeChain:
    @pytest.fixture(scope="class")
    def chain(self):
        return build_prime_chain(4096, num_levels=4, num_special=2)

    def test_all_distinct(self, chain):
        mods = chain.all_moduli
        assert len(set(mods)) == len(mods)

    def test_structure(self, chain):
        assert chain.max_level == 4
        assert len(chain.special_primes) == 2
        assert len(chain.moduli) == 5

    def test_products(self, chain):
        q2 = chain.q_product(2)
        assert q2 == chain.base * chain.scale_primes[0] * chain.scale_primes[1]
        p = chain.p_product()
        assert p == chain.special_primes[0] * chain.special_primes[1]

    def test_q_product_range_check(self, chain):
        with pytest.raises(ValueError):
            chain.q_product(99)

    def test_log_qp_plausible(self, chain):
        # base 31 + 4 scale ~28 + 2 special 31 => around 31+112+62 = 205 bits
        assert 190 <= chain.log_qp <= 210

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            build_prime_chain(4096, num_levels=-1, num_special=0)

    def test_empty_chain_products(self):
        chain = PrimeChain(base=7681)
        assert chain.p_product() == 1
        assert chain.q_product(0) == 7681
        assert chain.max_level == 0
