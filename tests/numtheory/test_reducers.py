"""Tests for Montgomery and Barrett reducers (scalar and vectorized)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.numtheory import BarrettReducer, MontgomeryReducer, find_ntt_prime

Q = find_ntt_prime(31, 4096)
SMALL_Q = 7681


@pytest.fixture(scope="module")
def mont():
    return MontgomeryReducer(Q)


@pytest.fixture(scope="module")
def barrett():
    return BarrettReducer(Q)


class TestMontgomeryScalar:
    def test_rejects_even_modulus(self):
        with pytest.raises(ValueError):
            MontgomeryReducer(16)

    def test_rejects_large_modulus(self):
        with pytest.raises(ValueError):
            MontgomeryReducer((1 << 31) + 11)

    def test_domain_roundtrip(self, mont):
        for a in [0, 1, 2, Q - 1, 12345]:
            assert mont.from_montgomery(mont.to_montgomery(a)) == a

    def test_mulmod_matches_bigint(self, mont):
        rng = np.random.default_rng(0)
        for _ in range(200):
            a = int(rng.integers(0, Q))
            b = int(rng.integers(0, Q))
            assert mont.mulmod(a, b) == (a * b) % Q

    def test_reduce_range_check(self, mont):
        with pytest.raises(ValueError):
            mont.reduce(Q * (1 << 32))

    @given(st.integers(min_value=0, max_value=Q - 1),
           st.integers(min_value=0, max_value=Q - 1))
    def test_mulmod_property(self, a, b):
        mont = MontgomeryReducer(Q)
        assert mont.mulmod(a, b) == (a * b) % Q


class TestMontgomeryVector:
    def test_mul_vec_with_montgomery_twiddle(self, mont):
        """mont_mul(a, b*R) == a*b mod q — the NTT twiddle-table trick."""
        rng = np.random.default_rng(1)
        a = rng.integers(0, Q, size=1000, dtype=np.uint64)
        b = rng.integers(0, Q, size=1000, dtype=np.uint64)
        b_mont = mont.to_montgomery_vec(b)
        out = mont.mul_vec(a, b_mont)
        expected = (a.astype(object) * b.astype(object)) % Q
        assert np.array_equal(out.astype(object), expected)

    def test_roundtrip_vec(self, mont):
        rng = np.random.default_rng(2)
        a = rng.integers(0, Q, size=512, dtype=np.uint64)
        back = mont.from_montgomery_vec(mont.to_montgomery_vec(a))
        assert np.array_equal(back, a)

    def test_matches_scalar(self, mont):
        rng = np.random.default_rng(3)
        t = rng.integers(0, Q, size=100, dtype=np.uint64) * rng.integers(
            0, Q, size=100, dtype=np.uint64
        )
        vec = mont.reduce_vec(t)
        scalars = [mont.reduce(int(x)) for x in t]
        assert vec.tolist() == scalars


class TestBarrettScalar:
    def test_rejects_large_modulus(self):
        with pytest.raises(ValueError):
            BarrettReducer(1 << 31)

    def test_reduce_matches_mod(self, barrett):
        rng = np.random.default_rng(4)
        for _ in range(200):
            t = int(rng.integers(0, Q)) * int(rng.integers(0, Q))
            assert barrett.reduce(t) == t % Q

    def test_rejects_negative(self, barrett):
        with pytest.raises(ValueError):
            barrett.reduce(-1)

    def test_boundary_values(self, barrett):
        for t in [0, 1, Q - 1, Q, Q + 1, Q * Q - 1]:
            assert barrett.reduce(t) == t % Q

    @given(st.integers(min_value=0, max_value=Q - 1),
           st.integers(min_value=0, max_value=Q - 1))
    def test_mulmod_property(self, a, b):
        barrett = BarrettReducer(Q)
        assert barrett.mulmod(a, b) == (a * b) % Q


class TestBarrettVector:
    def test_reduce_vec_matches_bigint(self, barrett):
        rng = np.random.default_rng(5)
        a = rng.integers(0, Q, size=2048, dtype=np.uint64)
        b = rng.integers(0, Q, size=2048, dtype=np.uint64)
        out = barrett.mul_vec(a, b)
        expected = (a.astype(object) * b.astype(object)) % Q
        assert np.array_equal(out.astype(object), expected)

    def test_reduce_vec_near_maximum_input(self, barrett):
        # Products of values just below q stress the high partial products.
        a = np.full(64, Q - 1, dtype=np.uint64)
        out = barrett.mul_vec(a, a)
        assert np.all(out == ((Q - 1) * (Q - 1)) % Q)

    def test_add_sub_vec(self, barrett):
        rng = np.random.default_rng(6)
        a = rng.integers(0, Q, size=512, dtype=np.uint64)
        b = rng.integers(0, Q, size=512, dtype=np.uint64)
        s = barrett.add_vec(a, b)
        d = barrett.sub_vec(a, b)
        assert np.array_equal(s.astype(object), (a.astype(object) + b) % Q)
        assert np.array_equal(d.astype(object), (a.astype(object) - b) % Q)

    def test_sub_vec_wraps(self, barrett):
        a = np.array([0], dtype=np.uint64)
        b = np.array([1], dtype=np.uint64)
        assert barrett.sub_vec(a, b)[0] == Q - 1

    def test_small_modulus(self):
        red = BarrettReducer(SMALL_Q)
        rng = np.random.default_rng(7)
        a = rng.integers(0, SMALL_Q, size=256, dtype=np.uint64)
        b = rng.integers(0, SMALL_Q, size=256, dtype=np.uint64)
        out = red.mul_vec(a, b)
        assert np.array_equal(out.astype(object), (a.astype(object) * b) % SMALL_Q)


class TestCrossReducerAgreement:
    """Montgomery and Barrett must agree — the paper swaps them per §IV-A-4."""

    @given(st.integers(min_value=0, max_value=Q - 1),
           st.integers(min_value=0, max_value=Q - 1))
    def test_agree(self, a, b):
        assert MontgomeryReducer(Q).mulmod(a, b) == BarrettReducer(Q).mulmod(a, b)
