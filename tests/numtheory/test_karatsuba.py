"""Tests for limb splitting and the Karatsuba ablation (§IV-A-4)."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.numtheory import (
    KARATSUBA_COST,
    SCHOOLBOOK_COST,
    karatsuba_limb_product,
    merge_limbs,
    schoolbook_limb_product,
    split_limbs,
)


class TestLimbSplitMerge:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 1 << 31, size=1024, dtype=np.uint64)
        assert np.array_equal(merge_limbs(split_limbs(values)), values)

    def test_limbs_below_256(self):
        values = np.array([0xFFFFFFFF, 0, 0x01020304], dtype=np.uint64)
        for limb in split_limbs(values):
            assert limb.max() < 256

    def test_known_decomposition(self):
        limbs = split_limbs(np.array([0x01020304], dtype=np.uint64))
        assert [int(limb[0]) for limb in limbs] == [0x04, 0x03, 0x02, 0x01]

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_roundtrip_property(self, v):
        arr = np.array([v], dtype=np.uint64)
        assert int(merge_limbs(split_limbs(arr))[0]) == v


class TestLimbProducts:
    def test_schoolbook_exact(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 1 << 31, size=256, dtype=np.uint64)
        b = rng.integers(0, 1 << 31, size=256, dtype=np.uint64)
        got = schoolbook_limb_product(split_limbs(a), split_limbs(b))
        expected = a.astype(object) * b.astype(object)
        assert np.array_equal(got.astype(object), expected)

    def test_karatsuba_exact(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 1 << 31, size=256, dtype=np.uint64)
        b = rng.integers(0, 1 << 31, size=256, dtype=np.uint64)
        got = karatsuba_limb_product(split_limbs(a), split_limbs(b))
        expected = a.astype(object) * b.astype(object)
        assert np.array_equal(got.astype(object), expected)

    def test_schemes_agree(self):
        rng = np.random.default_rng(3)
        a = rng.integers(0, 1 << 31, size=512, dtype=np.uint64)
        b = rng.integers(0, 1 << 31, size=512, dtype=np.uint64)
        assert np.array_equal(
            schoolbook_limb_product(split_limbs(a), split_limbs(b)),
            karatsuba_limb_product(split_limbs(a), split_limbs(b)),
        )

    @given(st.integers(min_value=0, max_value=(1 << 31) - 1),
           st.integers(min_value=0, max_value=(1 << 31) - 1))
    def test_karatsuba_property(self, x, y):
        a = np.array([x], dtype=np.uint64)
        b = np.array([y], dtype=np.uint64)
        got = karatsuba_limb_product(split_limbs(a), split_limbs(b))
        assert int(got[0]) == x * y


class TestCostClaims:
    """The paper's §IV-A-4 numbers: 16 -> 9 muls, +5 adds, -2 bits."""

    def test_multiplication_reduction(self):
        assert SCHOOLBOOK_COST.multiplications == 16
        assert KARATSUBA_COST.multiplications == 9

    def test_addition_overhead(self):
        assert KARATSUBA_COST.extra_additions == 5

    def test_word_length_loss(self):
        assert KARATSUBA_COST.effective_word_bits_lost == 2
        assert SCHOOLBOOK_COST.effective_word_bits_lost == 0
