"""Unit and property tests for scalar modular arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numtheory import modmath


class TestModpow:
    def test_small_cases(self):
        assert modmath.modpow(2, 10, 1000) == 24
        assert modmath.modpow(3, 0, 7) == 1
        assert modmath.modpow(0, 5, 7) == 0

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            modmath.modpow(2, -1, 7)

    def test_nonpositive_modulus_rejected(self):
        with pytest.raises(ValueError):
            modmath.modpow(2, 3, 0)

    @given(
        st.integers(min_value=0, max_value=10**9),
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=2, max_value=10**9),
    )
    def test_matches_builtin(self, base, exp, mod):
        assert modmath.modpow(base, exp, mod) == pow(base, exp, mod)


class TestModinv:
    def test_known_inverse(self):
        assert modmath.modinv(3, 7) == 5

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            modmath.modinv(0, 7)

    def test_non_coprime_rejected(self):
        with pytest.raises(ValueError):
            modmath.modinv(6, 9)

    @given(st.integers(min_value=1, max_value=10**6))
    def test_inverse_property_prime_modulus(self, a):
        q = 2**31 - 1  # Mersenne prime
        inv = modmath.modinv(a, q)
        assert (a * inv) % q == 1


class TestPrimality:
    def test_small_primes(self):
        primes = [2, 3, 5, 7, 11, 13, 97, 7681, 12289]
        for p in primes:
            assert modmath.is_probable_prime(p)

    def test_small_composites(self):
        for c in [0, 1, 4, 9, 15, 561, 1105, 25326001]:
            assert not modmath.is_probable_prime(c)

    def test_carmichael_numbers_rejected(self):
        # Classic Fermat pseudoprimes must fail Miller-Rabin.
        for c in [561, 1105, 1729, 2465, 2821, 6601]:
            assert not modmath.is_probable_prime(c)

    def test_large_known_prime(self):
        assert modmath.is_probable_prime(2**31 - 1)
        assert not modmath.is_probable_prime(2**32 - 1)

    @given(st.integers(min_value=2, max_value=10**5))
    def test_agrees_with_trial_division(self, n):
        by_trial = all(n % d for d in range(2, int(n**0.5) + 1))
        assert modmath.is_probable_prime(n) == by_trial


class TestFactorize:
    def test_small(self):
        assert modmath.factorize(12) == {2: 2, 3: 1}
        assert modmath.factorize(1) == {}
        assert modmath.factorize(97) == {97: 1}

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            modmath.factorize(0)

    @settings(max_examples=50)
    @given(st.integers(min_value=2, max_value=10**12))
    def test_product_roundtrip(self, n):
        factors = modmath.factorize(n)
        product = 1
        for p, e in factors.items():
            assert modmath.is_probable_prime(p)
            product *= p**e
        assert product == n


class TestRoots:
    def test_primitive_root_of_7(self):
        assert modmath.primitive_root(7) == 3

    def test_primitive_root_rejects_composite(self):
        with pytest.raises(ValueError):
            modmath.primitive_root(8)

    def test_root_of_unity_order(self):
        q = 7681  # 7681 = 1 + 512*15, supports order up to 512
        for order in [2, 4, 256, 512]:
            w = modmath.root_of_unity(order, q)
            assert pow(w, order, q) == 1
            # primitive: no smaller power hits 1
            for p in modmath.factorize(order):
                assert pow(w, order // p, q) != 1

    def test_root_of_unity_rejects_bad_order(self):
        with pytest.raises(ValueError):
            modmath.root_of_unity(1024, 7681)  # 1024 does not divide 7680


class TestBitReverse:
    def test_examples(self):
        assert modmath.bit_reverse(0b001, 3) == 0b100
        assert modmath.bit_reverse(0b110, 3) == 0b011
        assert modmath.bit_reverse(5, 4) == 10

    def test_permutation_is_involution(self):
        perm = modmath.bit_reverse_permutation(16)
        assert sorted(perm) == list(range(16))
        assert [perm[perm[i]] for i in range(16)] == list(range(16))

    def test_permutation_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            modmath.bit_reverse_permutation(12)

    @given(st.integers(min_value=0, max_value=2**16 - 1))
    def test_double_reverse_identity(self, v):
        assert modmath.bit_reverse(modmath.bit_reverse(v, 16), 16) == v


class TestPowerOfTwo:
    def test_powers(self):
        assert modmath.is_power_of_two(1)
        assert modmath.is_power_of_two(65536)

    def test_non_powers(self):
        for n in [0, -2, 3, 12, 65535]:
            assert not modmath.is_power_of_two(n)
