"""Property tests for the scheme-support RNS primitives (signed extension
and t-preserving ModDown) added for BGV/BFV."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numtheory import CRTReconstructor, find_ntt_primes
from repro.numtheory.rns import (
    RNSBasis,
    extend_basis_signed,
    mod_down_exact_t,
)

PRIMES = find_ntt_primes(6, 28, 512)
SOURCE = RNSBasis(PRIMES[:3])
TARGET = RNSBasis(PRIMES[3:6])


def to_rows(values, basis):
    return np.stack([
        np.array([v % q for v in values], dtype=np.uint64)
        for q in basis.moduli
    ])


class TestSignedExtensionProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(
        st.integers(min_value=-(SOURCE.product // 3),
                    max_value=SOURCE.product // 3),
        min_size=1, max_size=16,
    ))
    def test_centered_values_roundtrip(self, values):
        rows = to_rows(values, SOURCE)
        out = extend_basis_signed(rows, SOURCE, TARGET)
        for j, t in enumerate(TARGET.moduli):
            assert out[j].tolist() == [v % t for v in values]

    def test_extension_preserves_sums(self):
        rnd = random.Random(3)
        a = [rnd.randrange(-SOURCE.product // 4, SOURCE.product // 4)
             for _ in range(16)]
        b = [rnd.randrange(-SOURCE.product // 4, SOURCE.product // 4)
             for _ in range(16)]
        ext_sum = extend_basis_signed(
            to_rows([x + y for x, y in zip(a, b)], SOURCE), SOURCE, TARGET
        )
        for j, t in enumerate(TARGET.moduli):
            expected = [(x + y) % t for x, y in zip(a, b)]
            assert ext_sum[j].tolist() == expected

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            extend_basis_signed(
                np.zeros((2, 4), dtype=np.uint64), SOURCE, TARGET
            )


class TestModDownExactTProperties:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=2**16), st.integers(0, 10**9))
    def test_residue_and_accuracy(self, t_candidate, seed):
        from repro.numtheory import is_probable_prime

        # Use an odd modulus coprime to the chain (primality not needed
        # for the GHS rounding, only coprimality).
        t = t_candidate | 1
        if any(q % t == 0 or t % q == 0 for q in PRIMES[:5]):
            return
        main = RNSBasis(PRIMES[:3])
        special = RNSBasis(PRIMES[3:5])
        rnd = random.Random(seed)
        xs = [rnd.randrange(main.product) for _ in range(8)]
        rows = np.stack([
            np.array([x % q for x in xs], dtype=np.uint64)
            for q in main.moduli + special.moduli
        ])
        out = mod_down_exact_t(rows, main, special, t)
        crt = CRTReconstructor(main.moduli)
        ys = crt.reconstruct_array(out)
        p = special.product
        p_inv_t = pow(p, -1, t)
        for x, y in zip(xs, ys):
            assert y % t == (x * p_inv_t) % t
            assert abs(y - x // p) <= t + 1
