"""Tests for CRT reconstruction and RNS basis conversions."""

import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.numtheory import (
    CRTReconstructor,
    RNSBasis,
    digit_partition,
    extend_basis,
    find_ntt_primes,
    mod_down,
    rescale_rows,
)

PRIMES = find_ntt_primes(6, 28, 1024)


@pytest.fixture(scope="module")
def crt():
    return CRTReconstructor(PRIMES[:4])


class TestCRT:
    def test_roundtrip_scalar(self, crt):
        for x in [0, 1, 123456789, crt.product - 1]:
            assert crt.reconstruct(crt.decompose(x)) == x

    def test_signed_centering(self, crt):
        assert crt.reconstruct_signed(crt.decompose(-5)) == -5
        assert crt.reconstruct_signed(crt.decompose(7)) == 7

    def test_array_roundtrip(self, crt):
        values = [0, 1, 42, crt.product // 3, crt.product - 1]
        mat = crt.decompose_array(values)
        assert crt.reconstruct_array(mat) == values

    def test_signed_array(self, crt):
        values = [-10, -1, 0, 1, 10]
        mat = crt.decompose_array(values)
        assert crt.reconstruct_array(mat, signed=True) == values

    def test_wrong_residue_count(self, crt):
        with pytest.raises(ValueError):
            crt.reconstruct([1, 2])

    def test_empty_basis_rejected(self):
        with pytest.raises(ValueError):
            CRTReconstructor([])

    @settings(max_examples=50)
    @given(st.integers(min_value=0))
    def test_roundtrip_property(self, x):
        crt = CRTReconstructor(PRIMES[:3])
        x %= crt.product
        assert crt.reconstruct(crt.decompose(x)) == x


class TestRNSBasis:
    def test_distinct_required(self):
        with pytest.raises(ValueError):
            RNSBasis([PRIMES[0], PRIMES[0]])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RNSBasis([])

    def test_equality_and_hash(self):
        b1 = RNSBasis(PRIMES[:3])
        b2 = RNSBasis(PRIMES[:3])
        assert b1 == b2
        assert hash(b1) == hash(b2)
        assert b1 != RNSBasis(PRIMES[:2])

    def test_random_in_range(self):
        basis = RNSBasis(PRIMES[:3])
        mat = basis.random(256, np.random.default_rng(0))
        for row, q in zip(mat, basis.moduli):
            assert row.max() < q

    def test_reduce_signed(self):
        basis = RNSBasis(PRIMES[:2])
        coeffs = np.array([-3, 0, 5], dtype=np.int64)
        mat = basis.reduce_signed(coeffs)
        for row, q in zip(mat, basis.moduli):
            assert row.tolist() == [(-3) % q, 0, 5]


class TestExtendBasis:
    def test_exact_extension_matches_crt(self):
        source = RNSBasis(PRIMES[:3])
        target = RNSBasis(PRIMES[3:6])
        crt = CRTReconstructor(source.moduli)
        rnd = random.Random(1)
        values = [rnd.randrange(source.product) for _ in range(64)]
        residues = np.stack(
            [np.array([v % q for v in values], dtype=np.uint64)
             for q in source.moduli]
        )
        out = extend_basis(residues, source, target, exact=True)
        for j, t in enumerate(target.moduli):
            assert out[j].tolist() == [v % t for v in values]

    def test_approximate_extension_error_bounded(self):
        """Approximate ModUp may overshoot by u*Q with 0 <= u < |source|."""
        source = RNSBasis(PRIMES[:3])
        target = RNSBasis(PRIMES[3:5])
        rnd = random.Random(2)
        values = [rnd.randrange(source.product) for _ in range(64)]
        residues = np.stack(
            [np.array([v % q for v in values], dtype=np.uint64)
             for q in source.moduli]
        )
        out = extend_basis(residues, source, target)
        for col, v in enumerate(values):
            candidates = {
                (v + u * source.product) % target.moduli[0]
                for u in range(len(source) + 1)
            }
            assert int(out[0][col]) in candidates

    def test_shape_validation(self):
        source = RNSBasis(PRIMES[:3])
        target = RNSBasis(PRIMES[3:5])
        with pytest.raises(ValueError):
            extend_basis(np.zeros((2, 8), dtype=np.uint64), source, target)


class TestModDown:
    def test_exact_division_case(self):
        """x = P * y must come back exactly as y."""
        main = RNSBasis(PRIMES[:3])
        special = RNSBasis(PRIMES[3:5])
        rnd = random.Random(3)
        ys = [rnd.randrange(main.product) for _ in range(32)]
        xs = [y * special.product for y in ys]
        stacked = np.stack(
            [np.array([x % q for x in xs], dtype=np.uint64)
             for q in main.moduli + special.moduli]
        )
        out = mod_down(stacked, main, special)
        for i, q in enumerate(main.moduli):
            assert out[i].tolist() == [y % q for y in ys]

    def test_rounding_error_at_most_one(self):
        main = RNSBasis(PRIMES[:3])
        special = RNSBasis(PRIMES[3:5])
        rnd = random.Random(4)
        # Moderate values x < P * Q_main so floor(x/P) stays in range.
        xs = [rnd.randrange(special.product * 1000) for _ in range(32)]
        stacked = np.stack(
            [np.array([x % q for x in xs], dtype=np.uint64)
             for q in main.moduli + special.moduli]
        )
        out = mod_down(stacked, main, special)
        for col, x in enumerate(xs):
            got = int(out[0][col])
            floor_q = (x // special.product) % main.moduli[0]
            assert got == floor_q

    def test_shape_validation(self):
        main = RNSBasis(PRIMES[:2])
        special = RNSBasis(PRIMES[2:3])
        with pytest.raises(ValueError):
            mod_down(np.zeros((2, 4), dtype=np.uint64), main, special)


class TestRescaleRows:
    def test_exact_multiple(self):
        basis = RNSBasis(PRIMES[:3])
        q_last = basis.moduli[-1]
        rnd = random.Random(5)
        sub_product = basis.moduli[0] * basis.moduli[1]
        ys = [rnd.randrange(sub_product) for _ in range(32)]
        xs = [y * q_last for y in ys]
        stacked = np.stack(
            [np.array([x % q for x in xs], dtype=np.uint64)
             for q in basis.moduli]
        )
        out = rescale_rows(stacked, basis)
        assert out.shape == (2, 32)
        for i, q in enumerate(basis.moduli[:2]):
            assert out[i].tolist() == [y % q for y in ys]

    def test_refuses_single_modulus(self):
        basis = RNSBasis(PRIMES[:1])
        with pytest.raises(ValueError):
            rescale_rows(np.zeros((1, 4), dtype=np.uint64), basis)

    def test_shape_validation(self):
        basis = RNSBasis(PRIMES[:3])
        with pytest.raises(ValueError):
            rescale_rows(np.zeros((2, 4), dtype=np.uint64), basis)


class TestDigitPartition:
    def test_even_split(self):
        assert digit_partition(6, 3) == [[0, 1], [2, 3], [4, 5]]

    def test_ragged_split(self):
        assert digit_partition(5, 2) == [[0, 1, 2], [3, 4]]

    def test_more_digits_than_primes(self):
        parts = digit_partition(2, 4)
        assert parts == [[0], [1]]

    def test_single_digit(self):
        assert digit_partition(4, 1) == [[0, 1, 2, 3]]

    def test_rejects_zero_dnum(self):
        with pytest.raises(ValueError):
            digit_partition(4, 0)

    def test_covers_all_indices(self):
        for n, d in [(7, 3), (10, 4), (1, 1), (34, 7)]:
            parts = digit_partition(n, d)
            flat = [i for part in parts for i in part]
            assert flat == list(range(n))
