"""Batch (row-wise) reducers must be bit-identical to the scalar classes."""

import numpy as np
import pytest

from repro.numtheory import (
    BarrettReducer,
    BatchBarrettReducer,
    BatchMontgomeryReducer,
    MontgomeryReducer,
    find_ntt_primes,
)

N = 97  # deliberately not a power of two — reducers are shape-agnostic
MODULI = tuple(find_ntt_primes(5, 28, 64))


def rand_rows(rng, high_per_row, n=N):
    return np.stack([
        rng.integers(0, h, size=n, dtype=np.uint64) for h in high_per_row
    ])


class TestBatchBarrett:
    def test_matches_per_row(self):
        batch = BatchBarrettReducer(MODULI)
        rows = [BarrettReducer(q) for q in MODULI]
        for seed in range(25):
            rng = np.random.default_rng(seed)
            a = rand_rows(rng, MODULI)
            b = rand_rows(rng, MODULI)
            t = rand_rows(rng, [q * q for q in MODULI])
            assert np.array_equal(
                batch.reduce_mat(t),
                np.stack([r.reduce_vec(t[i]) for i, r in enumerate(rows)]),
            )
            assert np.array_equal(
                batch.mul_mat(a, b),
                np.stack([r.mul_vec(a[i], b[i]) for i, r in enumerate(rows)]),
            )
            assert np.array_equal(
                batch.add_mat(a, b),
                np.stack([r.add_vec(a[i], b[i]) for i, r in enumerate(rows)]),
            )
            assert np.array_equal(
                batch.sub_mat(a, b),
                np.stack([r.sub_vec(a[i], b[i]) for i, r in enumerate(rows)]),
            )

    def test_neg_mat(self):
        batch = BatchBarrettReducer(MODULI)
        rng = np.random.default_rng(0)
        a = rand_rows(rng, MODULI)
        a[0][0] = 0
        neg = batch.neg_mat(a)
        assert neg[0][0] == 0
        s = batch.add_mat(a, neg)
        assert not s.any()

    def test_three_dimensional_broadcast(self):
        """The NTT butterfly views rows as (L, groups, length) — the
        reducer must broadcast its constants along any trailing axes."""
        batch = BatchBarrettReducer(MODULI)
        rng = np.random.default_rng(1)
        a = rand_rows(rng, MODULI, n=96).reshape(len(MODULI), 8, 12)
        b = rand_rows(rng, MODULI, n=96).reshape(len(MODULI), 8, 12)
        out3 = batch.mul_mat(a, b)
        out2 = batch.mul_mat(a.reshape(len(MODULI), 96),
                             b.reshape(len(MODULI), 96))
        assert np.array_equal(out3.reshape(len(MODULI), 96), out2)

    def test_reduce_scalar_bigint(self):
        batch = BatchBarrettReducer(MODULI)
        big = MODULI[0] * MODULI[1] + 13
        col = batch.reduce_scalar(big)
        assert col.shape == (len(MODULI), 1)
        for i, q in enumerate(MODULI):
            assert int(col[i, 0]) == big % q

    def test_rejects_bad_moduli(self):
        with pytest.raises(ValueError):
            BatchBarrettReducer([])
        with pytest.raises(ValueError):
            BatchBarrettReducer([2])
        with pytest.raises(ValueError):
            BatchBarrettReducer([1 << 31])


class TestBatchMontgomery:
    def test_matches_per_row(self):
        batch = BatchMontgomeryReducer(MODULI)
        rows = [MontgomeryReducer(q) for q in MODULI]
        for seed in range(25):
            rng = np.random.default_rng(100 + seed)
            a = rand_rows(rng, MODULI)
            b = rand_rows(rng, MODULI)
            assert np.array_equal(
                batch.to_montgomery_mat(a),
                np.stack([
                    r.to_montgomery_vec(a[i]) for i, r in enumerate(rows)
                ]),
            )
            am = batch.to_montgomery_mat(a)
            assert np.array_equal(
                batch.mul_mat(am, b),
                np.stack([r.mul_vec(am[i], b[i]) for i, r in enumerate(rows)]),
            )
            assert np.array_equal(
                batch.from_montgomery_mat(am),
                np.stack([
                    r.from_montgomery_vec(am[i]) for i, r in enumerate(rows)
                ]),
            )

    def test_domain_roundtrip(self):
        batch = BatchMontgomeryReducer(MODULI)
        rng = np.random.default_rng(3)
        a = rand_rows(rng, MODULI)
        assert np.array_equal(
            batch.from_montgomery_mat(batch.to_montgomery_mat(a)), a
        )

    def test_rejects_even_modulus(self):
        with pytest.raises(ValueError):
            BatchMontgomeryReducer([MODULI[0], 1 << 20])
