"""Tests for the negacyclic polynomial helper functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ntt import (
    NttTables,
    cyclic_convolution,
    negacyclic_ntt,
    pointwise_mul,
    poly_add,
    poly_mul,
    poly_neg,
)
from repro.numtheory import find_ntt_prime

N = 32
Q = find_ntt_prime(28, N)
TABLES = NttTables(Q, N)
RNG = np.random.default_rng(0)


def rand_poly():
    return RNG.integers(0, Q, size=N, dtype=np.uint64)


class TestPolyHelpers:
    def test_add_neg_cancel(self):
        a = rand_poly()
        z = poly_add(a, poly_neg(a, Q), Q)
        assert not z.any()

    def test_add_commutes(self):
        a, b = rand_poly(), rand_poly()
        assert np.array_equal(poly_add(a, b, Q), poly_add(b, a, Q))

    def test_neg_of_zero(self):
        z = np.zeros(N, dtype=np.uint64)
        assert not poly_neg(z, Q).any()

    def test_pointwise_mul_is_eval_domain_product(self):
        a, b = rand_poly(), rand_poly()
        fa = negacyclic_ntt(a, TABLES)
        fb = negacyclic_ntt(b, TABLES)
        hadamard = pointwise_mul(fa, fb, TABLES)
        expected = (fa.astype(object) * fb.astype(object)) % Q
        assert np.array_equal(hadamard.astype(object), expected)

    def test_poly_mul_length_check(self):
        with pytest.raises(ValueError):
            poly_mul(rand_poly(), rand_poly()[: N // 2], Q)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=N - 1))
    def test_mul_by_monomial_shifts(self, k):
        """x^k * a == a shifted by k with negacyclic sign wrap."""
        a = rand_poly()
        mono = np.zeros(N, dtype=np.uint64)
        mono[k] = 1
        got = poly_mul(a, mono, Q)
        expected = np.zeros(N, dtype=object)
        for j in range(N):
            idx = j + k
            if idx < N:
                expected[idx] = (expected[idx] + int(a[j])) % Q
            else:
                expected[idx - N] = (expected[idx - N] - int(a[j])) % Q
        assert np.array_equal(got.astype(object), expected)


class TestCyclicConvolution:
    def test_matches_numpy_circular(self):
        a, b = rand_poly(), rand_poly()
        got = cyclic_convolution(a, b, Q)
        full = np.convolve(a.astype(object), b.astype(object))
        expected = np.zeros(N, dtype=object)
        for i, v in enumerate(full):
            expected[i % N] = (expected[i % N] + int(v)) % Q
        assert np.array_equal(got.astype(object), expected)

    def test_length_check(self):
        with pytest.raises(ValueError):
            cyclic_convolution(rand_poly(), rand_poly()[:8], Q)
