"""Tests for twiddle-table construction."""

import numpy as np
import pytest

from repro.ntt.tables import NttTables, get_tables
from repro.numtheory import find_ntt_prime

N = 64
Q = find_ntt_prime(28, N)


@pytest.fixture(scope="module")
def tables():
    return NttTables(Q, N)


class TestConstruction:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            NttTables(Q, 48)

    def test_rejects_unfriendly_modulus(self):
        with pytest.raises(ValueError):
            NttTables(97, 64)  # 97-1 = 96 not divisible by 128

    def test_psi_is_primitive_2n_root(self, tables):
        assert pow(tables.psi, 2 * N, Q) == 1
        assert pow(tables.psi, N, Q) == Q - 1  # psi^N = -1

    def test_omega_is_psi_squared(self, tables):
        assert tables.omega == (tables.psi * tables.psi) % Q
        assert pow(tables.omega, N, Q) == 1
        assert pow(tables.omega, N // 2, Q) != 1

    def test_inverses(self, tables):
        assert (tables.psi * tables.psi_inv) % Q == 1
        assert (tables.omega * tables.omega_inv) % Q == 1
        assert (N * tables.n_inv) % Q == 1


class TestPowerTables:
    def test_psi_pows(self, tables):
        for j in [0, 1, 5, N - 1]:
            assert int(tables.psi_pows[j]) == pow(tables.psi, j, Q)

    def test_montgomery_tables_consistent(self, tables):
        back = tables.mont.from_montgomery_vec(tables.omega_pows_mont)
        assert np.array_equal(back, tables.omega_pows)

    def test_inverse_tables(self, tables):
        prod = (
            tables.omega_pows.astype(object)
            * tables.omega_inv_pows.astype(object)
        ) % Q
        assert np.all(prod == 1)


class TestDerivedMatrices:
    def test_omega_for_size(self, tables):
        w16 = tables.omega_for_size(16)
        assert pow(w16, 16, Q) == 1
        assert pow(w16, 8, Q) != 1

    def test_omega_for_size_inverse(self, tables):
        w = tables.omega_for_size(16)
        wi = tables.omega_for_size(16, inverse=True)
        assert (w * wi) % Q == 1

    def test_omega_for_size_must_divide(self, tables):
        with pytest.raises(ValueError):
            tables.omega_for_size(48)

    def test_dft_matrix_entries(self, tables):
        m = tables.dft_matrix(8)
        w = tables.omega_for_size(8)
        for k in range(8):
            for j in range(8):
                assert int(m[k, j]) == pow(w, (j * k) % 8, Q)

    def test_twiddle_matrix_entries(self, tables):
        t = tables.twiddle_matrix(4, 8)
        w32 = tables.omega_for_size(32)
        for j1 in range(4):
            for k2 in range(8):
                assert int(t[j1, k2]) == pow(w32, (j1 * k2) % 32, Q)


class TestCache:
    def test_get_tables_is_cached(self):
        assert get_tables(Q, N) is get_tables(Q, N)
