"""Cross-validation of every NTT engine against the O(N^2) reference.

The paper's correctness claim rests on all execution strategies computing
the same transform; these tests enforce bit-exact agreement.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import ntt
from repro.ntt.tables import NttTables
from repro.numtheory import BarrettReducer, find_ntt_prime

N = 64
Q = find_ntt_prime(28, N)
TABLES = NttTables(Q, N)
RNG = np.random.default_rng(42)


def rand_poly(n=N, q=Q, batch=()):
    return RNG.integers(0, q, size=(*batch, n), dtype=np.uint64)


class TestReference:
    def test_cyclic_roundtrip(self):
        x = rand_poly()
        fx = ntt.reference_cyclic_ntt(x, TABLES.omega, Q)
        back = ntt.reference_cyclic_intt(fx, TABLES.omega, Q)
        assert np.array_equal(back, x)

    def test_negacyclic_roundtrip(self):
        x = rand_poly()
        fx = ntt.reference_negacyclic_ntt(x, TABLES)
        back = ntt.reference_negacyclic_intt(fx, TABLES)
        assert np.array_equal(back, x)

    def test_delta_transforms_to_ones(self):
        x = np.zeros(N, dtype=np.uint64)
        x[0] = 1
        fx = ntt.reference_cyclic_ntt(x, TABLES.omega, Q)
        assert np.all(fx == 1)

    def test_linear(self):
        a, b = rand_poly(), rand_poly()
        fa = ntt.reference_cyclic_ntt(a, TABLES.omega, Q)
        fb = ntt.reference_cyclic_ntt(b, TABLES.omega, Q)
        fsum = ntt.reference_cyclic_ntt(
            ((a.astype(object) + b) % Q).astype(np.uint64), TABLES.omega, Q
        )
        assert np.array_equal(fsum.astype(object), (fa.astype(object) + fb) % Q)


class TestRadix2:
    def test_matches_reference_forward(self):
        x = rand_poly()
        assert np.array_equal(
            ntt.negacyclic_ntt(x, TABLES),
            ntt.reference_negacyclic_ntt(x, TABLES),
        )

    def test_roundtrip(self):
        x = rand_poly()
        assert np.array_equal(
            ntt.negacyclic_intt(ntt.negacyclic_ntt(x, TABLES), TABLES), x
        )

    def test_batched(self):
        x = rand_poly(batch=(3, 2))
        fx = ntt.negacyclic_ntt(x, TABLES)
        for i in range(3):
            for j in range(2):
                assert np.array_equal(
                    fx[i, j], ntt.negacyclic_ntt(x[i, j], TABLES)
                )

    def test_cyclic_matches_reference(self):
        x = rand_poly()
        assert np.array_equal(
            ntt.cyclic_ntt(x, TABLES),
            ntt.reference_cyclic_ntt(x, TABLES.omega, Q),
        )

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ntt.cyclic_ntt(np.zeros(32, dtype=np.uint64), TABLES)

    def test_various_sizes(self):
        for n in [4, 8, 16, 128, 256]:
            q = find_ntt_prime(28, n)
            t = NttTables(q, n)
            x = RNG.integers(0, q, size=n, dtype=np.uint64)
            assert np.array_equal(
                ntt.negacyclic_intt(ntt.negacyclic_ntt(x, t), t), x
            )


class TestFourStep:
    @pytest.mark.parametrize("n1,n2", [(8, 8), (4, 16), (16, 4), (2, 32)])
    def test_matches_reference(self, n1, n2):
        x = rand_poly()
        got = ntt.fourstep_cyclic_ntt(x, n1, n2, TABLES.omega, Q)
        expected = ntt.reference_cyclic_ntt(x, TABLES.omega, Q)
        assert np.array_equal(got, expected)

    def test_negacyclic_form(self):
        x = rand_poly()
        got = ntt.fourstep_negacyclic_ntt(x, 8, 8, TABLES)
        assert np.array_equal(got, ntt.reference_negacyclic_ntt(x, TABLES))

    def test_shape_check(self):
        with pytest.raises(ValueError):
            ntt.fourstep_cyclic_ntt(rand_poly(), 8, 4, TABLES.omega, Q)


class TestButterfly:
    @pytest.mark.parametrize("size", [4, 8, 16, 64, 256])
    def test_matches_reference(self, size):
        q = find_ntt_prime(28, size)
        t = NttTables(q, size)
        red = BarrettReducer(q)
        x = RNG.integers(0, q, size=(2, size), dtype=np.uint64)
        got = ntt.butterfly_inner_ntt(x, size, t.omega, red)
        for row in range(2):
            assert np.array_equal(
                got[row], ntt.reference_cyclic_ntt(x[row], t.omega, q)
            )

    def test_choose_radix(self):
        assert ntt.choose_radix(16) == 16
        assert ntt.choose_radix(256) == 16
        assert ntt.choose_radix(64) == 8
        assert ntt.choose_radix(4) == 4
        assert ntt.choose_radix(32) == 16  # mixed radix: 16 divides 32

    def test_shape_check(self):
        with pytest.raises(ValueError):
            ntt.butterfly_inner_ntt(
                np.zeros((2, 8), dtype=np.uint64), 16, TABLES.omega,
                BarrettReducer(Q),
            )


class TestGemmEngines:
    def test_uint32_gemm_matches_bigint(self):
        red = BarrettReducer(Q)
        x = RNG.integers(0, Q, size=(5, 16), dtype=np.uint64)
        w = RNG.integers(0, Q, size=(16, 16), dtype=np.uint64)
        got = ntt.matmul_mod_uint32(x, w, red)
        expected = (x.astype(object) @ w.astype(object)) % Q
        assert np.array_equal(got.astype(object), expected)

    def test_bitsplit_gemm_matches_bigint(self):
        red = BarrettReducer(Q)
        x = RNG.integers(0, Q, size=(5, 16), dtype=np.uint64)
        w = RNG.integers(0, Q, size=(16, 16), dtype=np.uint64)
        got = ntt.bitsplit_matmul_mod(x, w, red)
        expected = (x.astype(object) @ w.astype(object)) % Q
        assert np.array_equal(got.astype(object), expected)

    def test_bitsplit_karatsuba_matches_schoolbook(self):
        red = BarrettReducer(Q)
        x = RNG.integers(0, Q, size=(4, 16), dtype=np.uint64)
        w = RNG.integers(0, Q, size=(16, 16), dtype=np.uint64)
        assert np.array_equal(
            ntt.bitsplit_matmul_mod(x, w, red, use_karatsuba=True),
            ntt.bitsplit_matmul_mod(x, w, red),
        )

    def test_bitsplit_depth_guard(self):
        red = BarrettReducer(Q)
        big = np.zeros((2, 1 << 16), dtype=np.uint64)
        w = np.zeros((1 << 16, 4), dtype=np.uint64)
        with pytest.raises(ValueError):
            ntt.bitsplit_matmul_mod(big, w, red)

    def test_limb_gemm_counts(self):
        assert ntt.count_limb_gemms() == 16
        assert ntt.count_limb_gemms(use_karatsuba=True) == 9

    def test_vector_input_rejected(self):
        red = BarrettReducer(Q)
        with pytest.raises(ValueError):
            ntt.matmul_mod_uint32(
                np.zeros(16, dtype=np.uint64),
                np.zeros((16, 16), dtype=np.uint64), red,
            )


class TestHierarchical:
    @pytest.mark.parametrize("engine", ntt.LEAF_ENGINES)
    def test_forward_matches_reference(self, engine):
        h = ntt.HierarchicalNtt(TABLES, leaf_engine=engine)
        x = rand_poly()
        assert np.array_equal(
            h.forward(x), ntt.reference_negacyclic_ntt(x, TABLES)
        )

    @pytest.mark.parametrize("engine", ntt.LEAF_ENGINES)
    def test_roundtrip(self, engine):
        h = ntt.HierarchicalNtt(TABLES, leaf_engine=engine)
        x = rand_poly(batch=(2,))
        assert np.array_equal(h.inverse(h.forward(x)), x)

    def test_large_n_two_level(self):
        n = 4096
        q = find_ntt_prime(28, n)
        t = NttTables(q, n)
        h = ntt.HierarchicalNtt(t, leaf_engine="tensor")
        x = RNG.integers(0, q, size=n, dtype=np.uint64)
        fast = ntt.negacyclic_ntt(x, t)
        assert np.array_equal(h.forward(x), fast)
        assert h.plan.describe() == "(16x16)x16"

    def test_karatsuba_variant_agrees(self):
        h1 = ntt.HierarchicalNtt(TABLES, leaf_engine="tensor")
        h2 = ntt.HierarchicalNtt(
            TABLES, leaf_engine="tensor", use_karatsuba=True
        )
        x = rand_poly()
        assert np.array_equal(h1.forward(x), h2.forward(x))

    def test_stats_collected(self):
        h = ntt.HierarchicalNtt(TABLES, leaf_engine="tensor")
        h.forward(rand_poly())
        stats = h.last_stats
        assert stats.leaf_invocations > 0
        assert stats.twiddle_muls > 0

    def test_engine_validation(self):
        with pytest.raises(ValueError):
            ntt.HierarchicalNtt(TABLES, leaf_engine="quantum")

    def test_plan_size_mismatch(self):
        with pytest.raises(ValueError):
            ntt.HierarchicalNtt(TABLES, plan=ntt.build_plan(128))

    def test_cyclic_form(self):
        h = ntt.HierarchicalNtt(TABLES)
        x = rand_poly()
        assert np.array_equal(
            h.forward_cyclic(x), ntt.reference_cyclic_ntt(x, TABLES.omega, Q)
        )


class TestConvolutionTheorem:
    """NTT(a*b) == NTT(a) . NTT(b) — the property that makes FHE fast."""

    def test_poly_mul_matches_schoolbook(self):
        a, b = rand_poly(), rand_poly()
        assert np.array_equal(
            ntt.poly_mul(a, b, Q), ntt.negacyclic_convolution(a, b, Q)
        )

    def test_mul_by_one(self):
        a = rand_poly()
        one = np.zeros(N, dtype=np.uint64)
        one[0] = 1
        assert np.array_equal(ntt.poly_mul(a, one, Q), a)

    def test_mul_by_x_shifts_with_sign(self):
        a = rand_poly()
        x_poly = np.zeros(N, dtype=np.uint64)
        x_poly[1] = 1
        got = ntt.poly_mul(a, x_poly, Q)
        assert np.array_equal(got[1:], a[:-1])
        assert int(got[0]) == (Q - int(a[-1])) % Q

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31))
    def test_scalar_mul_property(self, c):
        a = rand_poly()
        c_poly = np.zeros(N, dtype=np.uint64)
        c_poly[0] = c % Q
        got = ntt.poly_mul(a, c_poly, Q)
        expected = (a.astype(object) * (c % Q)) % Q
        assert np.array_equal(got.astype(object), expected)


class TestAutomorphisms:
    def test_rotation_is_permutation_with_signs(self):
        a = rand_poly()
        rotated = ntt.rotate_galois(a, 1, Q)
        # The multiset of |coefficients| is preserved.
        orig = sorted(min(int(v), Q - int(v)) for v in a)
        rot = sorted(min(int(v), Q - int(v)) for v in rotated)
        assert orig == rot

    def test_even_exponent_rejected(self):
        with pytest.raises(ValueError):
            ntt.apply_automorphism(rand_poly(), 2, Q)

    def test_identity_automorphism(self):
        a = rand_poly()
        assert np.array_equal(ntt.apply_automorphism(a, 1, Q), a)

    def test_automorphism_is_ring_hom(self):
        """phi(a*b) == phi(a)*phi(b) in the negacyclic ring."""
        a, b = rand_poly(), rand_poly()
        exp = 5
        lhs = ntt.apply_automorphism(ntt.poly_mul(a, b, Q), exp, Q)
        rhs = ntt.poly_mul(
            ntt.apply_automorphism(a, exp, Q),
            ntt.apply_automorphism(b, exp, Q), Q,
        )
        assert np.array_equal(lhs, rhs)

    def test_conjugate_is_involution(self):
        a = rand_poly()
        twice = ntt.conjugate_automorphism(
            ntt.conjugate_automorphism(a, Q), Q
        )
        assert np.array_equal(twice, a)
