"""Property-style bit-exactness suite for the batched RNS engine.

The batched ``(num_primes, N)`` path must agree *bit-for-bit* with the
historical per-row path, with every hierarchical NTT variant, and with the
O(N^2) reference transforms — on at least 100 seeded random inputs per
``(N, q)`` configuration.
"""

import numpy as np
import pytest

from repro.core.ntt_engine import batched_rns_forward, batched_rns_inverse
from repro.ntt import (
    LEAF_ENGINES,
    HierarchicalNtt,
    batched_cyclic_ntt,
    batched_negacyclic_intt,
    batched_negacyclic_ntt,
    get_tables,
    get_twiddle_stack,
    negacyclic_intt,
    negacyclic_ntt,
    reference_negacyclic_intt,
    reference_negacyclic_ntt,
)
from repro.ntt.radix2 import cyclic_ntt
from repro.numtheory import find_ntt_primes

NUM_SEEDS = 100


def rand_matrix(moduli, n, rng):
    return np.stack(
        [rng.integers(0, q, size=n, dtype=np.uint64) for q in moduli]
    )


class TestBatchedVsReference:
    """100+ seeded inputs per (N, q) config against the O(N^2) ground truth."""

    @pytest.mark.parametrize("n", [16, 32])
    def test_forward_and_inverse_match_reference(self, n):
        moduli = tuple(find_ntt_primes(3, 28, n))
        stack = get_twiddle_stack(moduli, n)
        for seed in range(NUM_SEEDS):
            rng = np.random.default_rng(seed)
            data = rand_matrix(moduli, n, rng)
            fwd = batched_negacyclic_ntt(data, stack)
            inv = batched_negacyclic_intt(fwd, stack)
            for i, q in enumerate(moduli):
                tables = get_tables(q, n)
                assert np.array_equal(
                    fwd[i], reference_negacyclic_ntt(data[i], tables)
                ), f"seed {seed}, q={q}"
                assert np.array_equal(
                    inv[i], reference_negacyclic_intt(fwd[i], tables)
                )
            assert np.array_equal(inv, data)


class TestBatchedVsPerRow:
    """The batched kernel replays the per-row radix-2 path bit-for-bit."""

    @pytest.mark.parametrize("n", [64, 256])
    def test_negacyclic_roundtrip(self, n):
        moduli = tuple(find_ntt_primes(5, 28, n))
        stack = get_twiddle_stack(moduli, n)
        for seed in range(NUM_SEEDS):
            rng = np.random.default_rng(1000 + seed)
            data = rand_matrix(moduli, n, rng)
            fwd = batched_negacyclic_ntt(data, stack)
            per_row = np.stack([
                negacyclic_ntt(data[i], get_tables(q, n))
                for i, q in enumerate(moduli)
            ])
            assert np.array_equal(fwd, per_row), f"seed {seed}"
            inv = batched_negacyclic_intt(fwd, stack)
            per_row_inv = np.stack([
                negacyclic_intt(fwd[i], get_tables(q, n))
                for i, q in enumerate(moduli)
            ])
            assert np.array_equal(inv, per_row_inv)
            assert np.array_equal(inv, data)

    def test_cyclic_core(self):
        n = 128
        moduli = tuple(find_ntt_primes(4, 28, n))
        stack = get_twiddle_stack(moduli, n)
        for seed in range(NUM_SEEDS):
            rng = np.random.default_rng(2000 + seed)
            data = rand_matrix(moduli, n, rng)
            for inverse in (False, True):
                batched = batched_cyclic_ntt(data, stack, inverse=inverse)
                per_row = np.stack([
                    cyclic_ntt(data[i], get_tables(q, n), inverse=inverse)
                    for i, q in enumerate(moduli)
                ])
                assert np.array_equal(batched, per_row)

    def test_shape_validation(self):
        n = 64
        moduli = tuple(find_ntt_primes(2, 28, n))
        stack = get_twiddle_stack(moduli, n)
        with pytest.raises(ValueError):
            batched_cyclic_ntt(np.zeros((3, n), dtype=np.uint64), stack)
        with pytest.raises(ValueError):
            batched_cyclic_ntt(np.zeros((2, 2 * n), dtype=np.uint64), stack)


class TestBatchedVsAllVariants:
    """Every hierarchical leaf engine agrees with the batched kernel."""

    @pytest.mark.parametrize("engine", LEAF_ENGINES)
    def test_variant_agreement(self, engine):
        n = 256
        moduli = tuple(find_ntt_primes(3, 28, n))
        stack = get_twiddle_stack(moduli, n)
        executors = [
            HierarchicalNtt(get_tables(q, n), leaf_engine=engine)
            for q in moduli
        ]
        for seed in range(20):
            rng = np.random.default_rng(3000 + seed)
            data = rand_matrix(moduli, n, rng)
            fwd = batched_negacyclic_ntt(data, stack)
            variant = np.stack(
                [ex.forward(data[i]) for i, ex in enumerate(executors)]
            )
            assert np.array_equal(fwd, variant), f"{engine}, seed {seed}"
            inv = batched_negacyclic_intt(fwd, stack)
            variant_inv = np.stack(
                [ex.inverse(fwd[i]) for i, ex in enumerate(executors)]
            )
            assert np.array_equal(inv, variant_inv)


class TestCoreEntryPoint:
    """The core-layer batched entry (shared by all WD variants) matches."""

    def test_forward_inverse(self):
        n = 128
        moduli = tuple(find_ntt_primes(4, 28, n))
        rng = np.random.default_rng(7)
        data = rand_matrix(moduli, n, rng)
        fwd = batched_rns_forward(data, moduli, n)
        per_row = np.stack([
            negacyclic_ntt(data[i], get_tables(q, n))
            for i, q in enumerate(moduli)
        ])
        assert np.array_equal(fwd, per_row)
        assert np.array_equal(batched_rns_inverse(fwd, moduli, n), data)

    def test_warpdrive_ntt_methods(self):
        from repro.core import WarpDriveNtt

        n = 128
        moduli = tuple(find_ntt_primes(3, 28, n))
        rng = np.random.default_rng(8)
        data = rand_matrix(moduli, n, rng)
        for variant in ("wd-fuse", "wd-bo"):
            eng = WarpDriveNtt(n, variant=variant)
            fwd = eng.forward_rns(data, moduli)
            assert np.array_equal(eng.inverse_rns(fwd, moduli), data)
            per_row = np.stack([
                negacyclic_ntt(data[i], get_tables(q, n))
                for i, q in enumerate(moduli)
            ])
            assert np.array_equal(fwd, per_row)
