"""Tests for the decomposition planner and the Table IV cost model."""

import pytest

from repro.ntt.decompose import (
    DecompositionCost,
    NttPlan,
    build_plan,
    table_iv_rows,
)


class TestBuildPlan:
    def test_paper_plan_for_65536(self):
        plan = build_plan(65536)
        assert plan.describe() == "(16x16)x(16x16)"
        assert plan.depth == 2
        assert plan.num_steps() == 7  # the 7-step schedule of Fig. 2

    def test_paper_plan_for_4096(self):
        plan = build_plan(4096)
        assert plan.describe() == "(16x16)x16"
        assert plan.depth == 2

    def test_small_sizes_are_leaves(self):
        for n in [2, 4, 8, 16]:
            assert build_plan(n).is_leaf

    def test_leaf_sizes_bounded(self):
        for logn in range(5, 17):
            plan = build_plan(1 << logn)
            assert all(s <= 16 for s in plan.leaf_sizes())

    def test_product_of_leaves(self):
        for logn in range(1, 17):
            n = 1 << logn
            product = 1
            for s in build_plan(n).leaf_sizes():
                product *= s
            assert product == n

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            build_plan(0)
        with pytest.raises(ValueError):
            build_plan(48)

    def test_custom_leaf_size(self):
        plan = build_plan(64, max_leaf=8)
        assert all(s <= 8 for s in plan.leaf_sizes())

    def test_leaf_accessors_raise(self):
        leaf = NttPlan(16)
        with pytest.raises(ValueError):
            _ = leaf.n1
        with pytest.raises(ValueError):
            _ = leaf.n2


class TestTableIV:
    """Exact reproduction of the paper's Table IV at N = 65536."""

    @pytest.fixture(scope="class")
    def rows(self):
        return {r.level: r for r in table_iv_rows()}

    def test_matrix_sizes(self, rows):
        assert rows[0].matrix_size == 2**32
        assert rows[1].matrix_size == 2**16
        assert rows[2].matrix_size == 2**8
        assert rows[3].matrix_size == 2**4

    def test_ew_mul(self, rows):
        assert rows[0].ew_mul == 2**32
        assert rows[1].ew_mul == 2**25
        assert rows[2].ew_mul == 2**22
        assert rows[3].ew_mul == 2**21

    def test_mod_red(self, rows):
        assert rows[0].mod_red == 2**17
        assert rows[1].mod_red == 2**17
        assert rows[2].mod_red == 2**18
        assert rows[3].mod_red == 2**19

    def test_mod_mul(self, rows):
        assert rows[0].mod_mul == 2**16
        assert rows[1].mod_mul == 2**16
        assert rows[2].mod_mul == 3 * 2**16
        assert rows[3].mod_mul == 7 * 2**16

    def test_bit_dec_mer(self, rows):
        assert rows[0].bit_dec_mer == 2**17
        assert rows[1].bit_dec_mer == 2**17
        assert rows[2].bit_dec_mer == 3 * 2**17
        assert rows[3].bit_dec_mer == 7 * 2**17

    def test_level_2_cuts_ew_mul_to_one_eighth(self, rows):
        """§IV-A-2: 2-level decomposition cuts the GEMM multiplications to
        1/8 of the single-level amount."""
        assert rows[1].ew_mul // rows[2].ew_mul == 8

    def test_negative_level_rejected(self):
        with pytest.raises(ValueError):
            DecompositionCost.for_level(65536, -1)
