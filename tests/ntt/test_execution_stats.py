"""Coherence between the executed NTT and the analytic cost model.

The simulator prices kernels from `plan_work_counts`; these tests confirm
the *executed* hierarchical NTT does the amount of work the analytic
model claims — tying the performance layer's inputs to the functional
layer's behaviour.
"""

import numpy as np
import pytest

from repro.core import plan_work_counts
from repro.ntt import HierarchicalNtt, NttTables, build_plan
from repro.numtheory import find_ntt_prime


@pytest.mark.parametrize("n", [256, 1024, 4096])
def test_leaf_elements_match_analytic_ew_mul(n):
    """Each leaf GEMM multiplies (elements x leaf_dim) scalars; summing
    over leaf steps must equal the Table IV EW-Mul count."""
    q = find_ntt_prime(28, n)
    tables = NttTables(q, n)
    plan = build_plan(n)
    engine = HierarchicalNtt(tables, plan=plan, leaf_engine="cuda-gemm")
    x = np.random.default_rng(0).integers(0, q, size=n, dtype=np.uint64)
    engine.forward(x)
    stats = engine.last_stats
    counts = plan_work_counts(plan)

    # Every element passes through exactly one GEMM per leaf step, each
    # costing `leaf dim` multiplications — so the executed element count
    # and the analytic EW-Mul agree.
    assert stats.leaf_elements == n * counts.leaf_steps
    assert n * sum(plan.leaf_sizes()) == counts.ew_mul


@pytest.mark.parametrize("n", [256, 4096])
def test_twiddle_muls_match_analytic_mod_mul(n):
    q = find_ntt_prime(28, n)
    tables = NttTables(q, n)
    plan = build_plan(n)
    engine = HierarchicalNtt(tables, plan=plan, leaf_engine="cuda-gemm")
    x = np.random.default_rng(1).integers(0, q, size=n, dtype=np.uint64)
    engine.forward(x)
    counts = plan_work_counts(plan)
    assert engine.last_stats.twiddle_muls == counts.mod_mul


def test_step_count_matches_plan_schedule():
    n = 65536 // 16  # 4096: the (16x16)x16 plan
    q = find_ntt_prime(28, n)
    tables = NttTables(q, n)
    plan = build_plan(n)
    engine = HierarchicalNtt(tables, plan=plan, leaf_engine="butterfly")
    x = np.random.default_rng(2).integers(0, q, size=n, dtype=np.uint64)
    engine.forward(x)
    assert engine.last_stats.steps == plan.num_steps()
