"""Bit-exactness suite for the stacked (digit-batched) Shoup NTT kernel.

The ``(P, G, N)`` stacked transforms must agree bit-for-bit with running
the Montgomery-domain batched kernel row by row, for every digit-lane
count, for 2-D matrix inputs, and regardless of which lazy
representatives (< 2**32) the ModUp stage feeds in. The lazy output and
digit-innermost (``t_out``) modes must be congruent views of the same
canonical transform.
"""

import numpy as np
import pytest

from repro.ntt import (
    batched_negacyclic_intt,
    batched_negacyclic_ntt,
    get_shoup_stack,
    get_twiddle_stack,
    shoup_stack_cache_stats,
    stacked_negacyclic_intt,
    stacked_negacyclic_ntt,
)
from repro.numtheory import find_ntt_primes

NUM_SEEDS = 25


def rand_batch(moduli, g, n, rng):
    return np.stack([
        np.stack([
            rng.integers(0, q, size=n, dtype=np.uint64) for _ in range(g)
        ])
        for q in moduli
    ])


def row_reference_ntt(data, moduli, n):
    """Per-(prime, digit) rows through the pre-existing batched kernel."""
    stack = get_twiddle_stack(moduli, n)
    out = np.empty_like(data)
    for gi in range(data.shape[1]):
        out[:, gi] = batched_negacyclic_ntt(
            np.ascontiguousarray(data[:, gi]), stack
        )
    return out


class TestStackedVsBatchedKernel:
    @pytest.mark.parametrize("n,g", [(64, 1), (64, 3), (128, 5), (256, 2)])
    def test_forward_matches_per_digit_rows(self, n, g):
        moduli = tuple(find_ntt_primes(3, 28, n))
        stack = get_shoup_stack(moduli, n)
        for seed in range(NUM_SEEDS):
            rng = np.random.default_rng(seed)
            data = rand_batch(moduli, g, n, rng)
            got = stacked_negacyclic_ntt(data, stack)
            assert np.array_equal(
                got, row_reference_ntt(data, moduli, n)
            ), f"seed {seed}"

    @pytest.mark.parametrize("n,g", [(64, 3), (128, 2)])
    def test_roundtrip_is_identity(self, n, g):
        moduli = tuple(find_ntt_primes(4, 28, n))
        stack = get_shoup_stack(moduli, n)
        for seed in range(NUM_SEEDS):
            rng = np.random.default_rng(100 + seed)
            data = rand_batch(moduli, g, n, rng)
            fwd = stacked_negacyclic_ntt(data, stack)
            assert np.array_equal(stacked_negacyclic_intt(fwd, stack), data)

    def test_inverse_matches_per_digit_rows(self):
        n, g = 128, 4
        moduli = tuple(find_ntt_primes(3, 28, n))
        stack = get_shoup_stack(moduli, n)
        tw = get_twiddle_stack(moduli, n)
        for seed in range(NUM_SEEDS):
            rng = np.random.default_rng(200 + seed)
            data = rand_batch(moduli, g, n, rng)
            got = stacked_negacyclic_intt(data, stack)
            per_row = np.empty_like(data)
            for gi in range(g):
                per_row[:, gi] = batched_negacyclic_intt(
                    np.ascontiguousarray(data[:, gi]), tw
                )
            assert np.array_equal(got, per_row), f"seed {seed}"

    def test_2d_matrix_shape(self):
        n = 64
        moduli = tuple(find_ntt_primes(3, 28, n))
        stack = get_shoup_stack(moduli, n)
        tw = get_twiddle_stack(moduli, n)
        rng = np.random.default_rng(7)
        data = rand_batch(moduli, 1, n, rng)[:, 0]
        fwd = stacked_negacyclic_ntt(data, stack)
        assert fwd.shape == data.shape
        assert np.array_equal(fwd, batched_negacyclic_ntt(data, tw))
        assert np.array_equal(stacked_negacyclic_intt(fwd, stack), data)

    def test_shape_validation(self):
        n = 64
        moduli = tuple(find_ntt_primes(2, 28, n))
        stack = get_shoup_stack(moduli, n)
        with pytest.raises(ValueError):
            stacked_negacyclic_ntt(np.zeros((3, n), dtype=np.uint64), stack)
        with pytest.raises(ValueError):
            stacked_negacyclic_ntt(
                np.zeros((2, 2, 2 * n), dtype=np.uint64), stack
            )


class TestLazyModes:
    def test_lazy_inputs_transform_identically(self):
        """Any representative < 2**32 gives the canonical transform —
        the contract the lazy single-prime ModUp broadcast relies on."""
        n, g = 64, 3
        moduli = tuple(find_ntt_primes(3, 28, n))
        stack = get_shoup_stack(moduli, n)
        q_col = np.array(moduli, dtype=np.uint64)[:, None, None]
        for seed in range(NUM_SEEDS):
            rng = np.random.default_rng(300 + seed)
            data = rand_batch(moduli, g, n, rng)
            # Shift rows by random multiples of q while staying < 2**32.
            mult = rng.integers(0, 2, size=data.shape).astype(np.uint64)
            shifted = data + mult * q_col
            assert (shifted < 2**32).all()
            assert np.array_equal(
                stacked_negacyclic_ntt(shifted, stack),
                stacked_negacyclic_ntt(data, stack),
            ), f"seed {seed}"

    def test_lazy_output_is_congruent(self):
        """lazy=True returns values < 2q that canonicalize to the
        non-lazy output."""
        n, g = 128, 3
        moduli = tuple(find_ntt_primes(3, 28, n))
        stack = get_shoup_stack(moduli, n)
        q_col = np.array(moduli, dtype=np.uint64)[:, None, None]
        rng = np.random.default_rng(11)
        data = rand_batch(moduli, g, n, rng)
        canonical = stacked_negacyclic_ntt(data, stack)
        lazy = stacked_negacyclic_ntt(data, stack, lazy=True)
        assert (lazy < 2 * q_col).all()
        assert np.array_equal(np.minimum(lazy, lazy - q_col), canonical)

    def test_t_out_layout(self):
        """t_out=True returns the digit-innermost (P, N, G) transpose of
        the natural-layout result."""
        n, g = 64, 4
        moduli = tuple(find_ntt_primes(3, 28, n))
        stack = get_shoup_stack(moduli, n)
        rng = np.random.default_rng(12)
        data = rand_batch(moduli, g, n, rng)
        natural = stacked_negacyclic_ntt(data, stack)
        t_layout = stacked_negacyclic_ntt(data, stack, t_out=True)
        assert t_layout.shape == (len(moduli), n, g)
        assert np.array_equal(t_layout.transpose(0, 2, 1), natural)
        with pytest.raises(ValueError):
            stacked_negacyclic_ntt(data[:, 0], stack, t_out=True)


class TestTableCache:
    def test_cache_is_shared_and_counted(self):
        n = 64
        moduli = tuple(find_ntt_primes(2, 28, n))
        before = shoup_stack_cache_stats()
        s1 = get_shoup_stack(moduli, n)
        s2 = get_shoup_stack(moduli, n)
        assert s1 is s2
        after = shoup_stack_cache_stats()
        assert after["hits"] > before["hits"]
